//! FIFO links with an adversarial control plane.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// A message on the wire: opaque bytes (ciphertext at the protocol layer).
pub type Wire = Vec<u8>;

#[derive(Debug, Default)]
struct LinkState {
    /// Messages sent but not yet released by the adversary.
    in_flight: VecDeque<Wire>,
    /// Messages released for the receiver.
    deliverable: VecDeque<Wire>,
    /// When `true` (honest network), sends bypass `in_flight`.
    auto_deliver: bool,
}

/// A unidirectional, reliable-FIFO message link.
///
/// In honest (auto-deliver) mode, [`LinkEnd::send`] makes the message
/// immediately receivable in order — the correct server of the paper.
/// In adversarial mode, sent messages park in an in-flight buffer that
/// only the [`LinkController`] can release, drop, duplicate, tamper
/// with, or reorder.
///
/// # Example
///
/// ```
/// use lcm_net::Link;
///
/// let (tx, rx, ctl) = Link::adversarial();
/// tx.send(b"msg-1".to_vec());
/// assert_eq!(rx.try_recv(), None); // held by the adversary
/// ctl.deliver_next();
/// assert_eq!(rx.try_recv(), Some(b"msg-1".to_vec()));
/// ```
#[derive(Debug)]
pub struct Link;

impl Link {
    /// Creates an honest link: messages are deliverable immediately, in
    /// FIFO order.
    pub fn honest() -> (LinkEnd, LinkEnd) {
        let state = Arc::new(Mutex::new(LinkState {
            auto_deliver: true,
            ..LinkState::default()
        }));
        (
            LinkEnd {
                state: state.clone(),
            },
            LinkEnd { state },
        )
    }

    /// Creates an adversary-controlled link: nothing is delivered until
    /// the [`LinkController`] says so.
    pub fn adversarial() -> (LinkEnd, LinkEnd, LinkController) {
        let state = Arc::new(Mutex::new(LinkState::default()));
        (
            LinkEnd {
                state: state.clone(),
            },
            LinkEnd {
                state: state.clone(),
            },
            LinkController { state },
        )
    }
}

/// One end of a link. The same type serves as sender and receiver;
/// protocol code only calls the direction it owns.
#[derive(Clone)]
pub struct LinkEnd {
    state: Arc<Mutex<LinkState>>,
}

impl fmt::Debug for LinkEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("LinkEnd")
            .field("in_flight", &s.in_flight.len())
            .field("deliverable", &s.deliverable.len())
            .field("auto_deliver", &s.auto_deliver)
            .finish()
    }
}

impl LinkEnd {
    /// Sends a message into the link.
    pub fn send(&self, msg: Wire) {
        let mut s = self.state.lock();
        if s.auto_deliver {
            s.deliverable.push_back(msg);
        } else {
            s.in_flight.push_back(msg);
        }
    }

    /// Receives the next deliverable message, or `None` if none is
    /// currently released.
    pub fn try_recv(&self) -> Option<Wire> {
        self.state.lock().deliverable.pop_front()
    }

    /// Drains all currently deliverable messages in order.
    pub fn drain(&self) -> Vec<Wire> {
        let mut s = self.state.lock();
        s.deliverable.drain(..).collect()
    }
}

/// The adversary's handle on a link.
///
/// Everything the paper's malicious server can do to messages —
/// *"intercept, modify, reorder, discard, or replay"* (§2.3) — is a
/// method here.
#[derive(Clone)]
pub struct LinkController {
    state: Arc<Mutex<LinkState>>,
}

impl fmt::Debug for LinkController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkController")
            .field("held", &self.held())
            .finish()
    }
}

impl LinkController {
    /// Number of messages currently held in flight.
    pub fn held(&self) -> usize {
        self.state.lock().in_flight.len()
    }

    /// Releases the oldest held message for delivery. Returns `false`
    /// when nothing is held.
    pub fn deliver_next(&self) -> bool {
        let mut s = self.state.lock();
        match s.in_flight.pop_front() {
            Some(m) => {
                s.deliverable.push_back(m);
                true
            }
            None => false,
        }
    }

    /// Releases every held message, preserving FIFO order.
    pub fn deliver_all(&self) {
        let mut s = self.state.lock();
        while let Some(m) = s.in_flight.pop_front() {
            s.deliverable.push_back(m);
        }
    }

    /// Discards the oldest held message. Returns it, if any.
    pub fn drop_next(&self) -> Option<Wire> {
        self.state.lock().in_flight.pop_front()
    }

    /// Duplicates the oldest held message (replay attack): after this,
    /// the same bytes sit twice in the in-flight queue.
    pub fn duplicate_next(&self) -> bool {
        let mut s = self.state.lock();
        match s.in_flight.front().cloned() {
            Some(m) => {
                s.in_flight.push_front(m);
                true
            }
            None => false,
        }
    }

    /// Re-delivers a previously captured message (replay of an old
    /// request even after the original was delivered).
    pub fn inject(&self, msg: Wire) {
        self.state.lock().deliverable.push_back(msg);
    }

    /// Returns a copy of the oldest held message without releasing it
    /// (interception/eavesdropping; the bytes are ciphertext).
    pub fn peek_next(&self) -> Option<Wire> {
        self.state.lock().in_flight.front().cloned()
    }

    /// Applies `f` to the oldest held message (tampering).
    pub fn tamper_next(&self, f: impl FnOnce(&mut Wire)) -> bool {
        let mut s = self.state.lock();
        match s.in_flight.front_mut() {
            Some(m) => {
                f(m);
                true
            }
            None => false,
        }
    }

    /// Swaps the order of the two oldest held messages (reordering).
    pub fn swap_front(&self) -> bool {
        let mut s = self.state.lock();
        if s.in_flight.len() >= 2 {
            s.in_flight.swap(0, 1);
            true
        } else {
            false
        }
    }

    /// Switches the link between honest auto-delivery and adversarial
    /// holding.
    pub fn set_auto_deliver(&self, auto: bool) {
        let mut s = self.state.lock();
        s.auto_deliver = auto;
        if auto {
            while let Some(m) = s.in_flight.pop_front() {
                s.deliverable.push_back(m);
            }
        }
    }
}

/// A bidirectional client⇄server channel: two links plus their
/// controllers.
#[derive(Debug)]
pub struct Duplex {
    /// Client-side handle: send requests, receive replies.
    pub client: DuplexEnd,
    /// Server-side handle: receive requests, send replies.
    pub server: DuplexEnd,
    /// Adversary control over the client→server direction.
    pub to_server: LinkController,
    /// Adversary control over the server→client direction.
    pub to_client: LinkController,
}

/// One side of a [`Duplex`].
#[derive(Debug, Clone)]
pub struct DuplexEnd {
    tx: LinkEnd,
    rx: LinkEnd,
}

impl DuplexEnd {
    /// Sends a message toward the peer.
    pub fn send(&self, msg: Wire) {
        self.tx.send(msg);
    }
    /// Receives the next deliverable message from the peer, if any.
    pub fn try_recv(&self) -> Option<Wire> {
        self.rx.try_recv()
    }
    /// Drains all deliverable messages from the peer.
    pub fn drain(&self) -> Vec<Wire> {
        self.rx.drain()
    }
}

impl Duplex {
    /// Creates an adversary-controlled duplex channel.
    pub fn adversarial() -> Duplex {
        let (c2s_tx, c2s_rx, to_server) = Link::adversarial();
        let (s2c_tx, s2c_rx, to_client) = Link::adversarial();
        Duplex {
            client: DuplexEnd {
                tx: c2s_tx,
                rx: s2c_rx,
            },
            server: DuplexEnd {
                tx: s2c_tx,
                rx: c2s_rx,
            },
            to_server,
            to_client,
        }
    }

    /// Creates an honest duplex channel (immediate FIFO delivery both
    /// ways). Controllers are still returned; they have no held
    /// messages unless auto-delivery is later disabled.
    pub fn honest() -> Duplex {
        let d = Duplex::adversarial();
        d.to_server.set_auto_deliver(true);
        d.to_client.set_auto_deliver(true);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_link_is_fifo() {
        let (tx, rx) = Link::honest();
        tx.send(b"1".to_vec());
        tx.send(b"2".to_vec());
        tx.send(b"3".to_vec());
        assert_eq!(rx.try_recv().unwrap(), b"1");
        assert_eq!(rx.try_recv().unwrap(), b"2");
        assert_eq!(rx.try_recv().unwrap(), b"3");
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn adversarial_link_holds_messages() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(b"1".to_vec());
        assert_eq!(rx.try_recv(), None);
        assert_eq!(ctl.held(), 1);
        assert!(ctl.deliver_next());
        assert_eq!(rx.try_recv().unwrap(), b"1");
    }

    #[test]
    fn drop_discards() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(b"1".to_vec());
        tx.send(b"2".to_vec());
        assert_eq!(ctl.drop_next().unwrap(), b"1");
        ctl.deliver_all();
        assert_eq!(rx.try_recv().unwrap(), b"2");
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn duplicate_replays() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(b"req".to_vec());
        assert!(ctl.duplicate_next());
        ctl.deliver_all();
        assert_eq!(rx.try_recv().unwrap(), b"req");
        assert_eq!(rx.try_recv().unwrap(), b"req");
    }

    #[test]
    fn inject_replays_captured_message() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(b"old".to_vec());
        let captured = ctl.peek_next().unwrap();
        ctl.deliver_all();
        assert_eq!(rx.try_recv().unwrap(), b"old");
        ctl.inject(captured);
        assert_eq!(rx.try_recv().unwrap(), b"old");
    }

    #[test]
    fn tamper_modifies_bytes() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(vec![0u8; 4]);
        assert!(ctl.tamper_next(|m| m[0] = 0xff));
        ctl.deliver_all();
        assert_eq!(rx.try_recv().unwrap(), vec![0xff, 0, 0, 0]);
    }

    #[test]
    fn swap_reorders() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(b"1".to_vec());
        tx.send(b"2".to_vec());
        assert!(ctl.swap_front());
        ctl.deliver_all();
        assert_eq!(rx.try_recv().unwrap(), b"2");
        assert_eq!(rx.try_recv().unwrap(), b"1");
    }

    #[test]
    fn swap_requires_two_messages() {
        let (tx, _rx, ctl) = Link::adversarial();
        tx.send(b"1".to_vec());
        assert!(!ctl.swap_front());
    }

    #[test]
    fn set_auto_deliver_flushes() {
        let (tx, rx, ctl) = Link::adversarial();
        tx.send(b"1".to_vec());
        ctl.set_auto_deliver(true);
        assert_eq!(rx.try_recv().unwrap(), b"1");
        tx.send(b"2".to_vec());
        assert_eq!(rx.try_recv().unwrap(), b"2");
    }

    #[test]
    fn duplex_roundtrip() {
        let d = Duplex::honest();
        d.client.send(b"request".to_vec());
        assert_eq!(d.server.try_recv().unwrap(), b"request");
        d.server.send(b"reply".to_vec());
        assert_eq!(d.client.try_recv().unwrap(), b"reply");
    }

    #[test]
    fn duplex_adversary_controls_directions_independently() {
        let d = Duplex::adversarial();
        d.client.send(b"request".to_vec());
        assert_eq!(d.server.try_recv(), None);
        d.to_server.deliver_all();
        assert_eq!(d.server.try_recv().unwrap(), b"request");
        d.server.send(b"reply".to_vec());
        assert_eq!(d.client.try_recv(), None);
        d.to_client.deliver_all();
        assert_eq!(d.client.try_recv().unwrap(), b"reply");
    }

    #[test]
    fn drain_returns_all_in_order() {
        let (tx, rx) = Link::honest();
        tx.send(b"1".to_vec());
        tx.send(b"2".to_vec());
        assert_eq!(rx.drain(), vec![b"1".to_vec(), b"2".to_vec()]);
        assert!(rx.drain().is_empty());
    }
}
