//! Message transport substrate for the LCM reproduction.
//!
//! The paper's system model (§2.1): clients and the trusted execution
//! context *"communicate indirectly through the server which should
//! forward messages among them. If S is correct, then their
//! communication is reliable and respects first-in first-out (FIFO)
//! semantics; otherwise, S may arbitrarily interfere with their
//! messages"* — intercept, modify, reorder, discard, or replay (§2.3).
//!
//! This crate models that channel:
//!
//! * [`Link`] — a unidirectional FIFO queue of opaque byte messages;
//!   honest delivery is exactly FIFO.
//! * [`LinkController`] — the adversary's handle on a link: hold,
//!   inspect, drop, duplicate, tamper with, and reorder in-flight
//!   messages. Every attack in the integration tests is expressed
//!   through this interface rather than by mocking protocol internals.
//! * [`Duplex`] — a client⇄server pair of links.
//! * [`NetModel`] — latency/bandwidth cost model used by `lcm-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod model;

pub use link::{Duplex, DuplexEnd, Link, LinkController, LinkEnd};
pub use model::NetModel;
