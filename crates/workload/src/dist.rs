//! Request-distribution generators, following YCSB's implementations.

use rand::Rng;

/// A generator of item indices in `[0, item_count)`.
pub trait KeyChooser {
    /// Draws the next item index.
    fn next_index<R: Rng>(&mut self, rng: &mut R) -> u64;

    /// Informs the chooser that the item space grew (inserts).
    fn set_item_count(&mut self, n: u64);
}

/// Uniform distribution over the item space.
#[derive(Debug, Clone)]
pub struct Uniform {
    items: u64,
}

impl Uniform {
    /// Creates a uniform chooser over `items` items.
    pub fn new(items: u64) -> Self {
        Uniform {
            items: items.max(1),
        }
    }
}

impl KeyChooser for Uniform {
    fn next_index<R: Rng>(&mut self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.items)
    }
    fn set_item_count(&mut self, n: u64) {
        self.items = n.max(1);
    }
}

/// The YCSB scrambled-zipfian distribution.
///
/// Hot items are spread across the keyspace by hashing the rank, as in
/// YCSB's `ScrambledZipfianGenerator`; the underlying rank distribution
/// is the incremental zipfian of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94) with the standard
/// YCSB constant θ = 0.99.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
    scramble: bool,
}

/// YCSB's default zipfian constant.
pub const DEFAULT_THETA: f64 = 0.99;

impl Zipfian {
    /// Creates a scrambled-zipfian chooser over `items` items with the
    /// default θ.
    pub fn new(items: u64) -> Self {
        Self::with_theta(items, DEFAULT_THETA, true)
    }

    /// Creates an unscrambled zipfian (rank 0 = hottest item).
    pub fn unscrambled(items: u64) -> Self {
        Self::with_theta(items, DEFAULT_THETA, false)
    }

    /// Full-control constructor.
    pub fn with_theta(items: u64, theta: f64, scramble: bool) -> Self {
        let items = items.max(1);
        let zeta_n = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            items,
            theta,
            zeta_n,
            alpha,
            eta,
            scramble,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact sum for the sizes used here (≤ a few million).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    fn next_rank<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (spread as u64).min(self.items - 1)
    }
}

/// FNV-1a 64-bit, YCSB's key-scrambling hash.
pub fn fnv1a_64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut hash = OFFSET;
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

impl KeyChooser for Zipfian {
    fn next_index<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let rank = self.next_rank(rng);
        if self.scramble {
            fnv1a_64(rank) % self.items
        } else {
            rank
        }
    }

    fn set_item_count(&mut self, n: u64) {
        let n = n.max(1);
        if n != self.items {
            *self = Self::with_theta(n, self.theta, self.scramble);
        }
    }
}

/// The "latest" distribution: like zipfian over recency — the most
/// recently inserted items are the hottest (YCSB workload D).
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
    items: u64,
}

impl Latest {
    /// Creates a latest-skewed chooser over `items` items.
    pub fn new(items: u64) -> Self {
        let items = items.max(1);
        Latest {
            zipf: Zipfian::with_theta(items, DEFAULT_THETA, false),
            items,
        }
    }
}

impl KeyChooser for Latest {
    fn next_index<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let back = self.zipf.next_rank(rng);
        self.items - 1 - back.min(self.items - 1)
    }

    fn set_item_count(&mut self, n: u64) {
        let n = n.max(1);
        self.items = n;
        self.zipf.set_item_count(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram<C: KeyChooser>(chooser: &mut C, items: usize, draws: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut counts = vec![0usize; items];
        for _ in 0..draws {
            let i = chooser.next_index(&mut rng) as usize;
            counts[i] += 1;
        }
        counts
    }

    #[test]
    fn uniform_in_range_and_roughly_flat() {
        let mut u = Uniform::new(100);
        let counts = histogram(&mut u, 100, 100_000);
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 700 && max < 1300, "min={min} max={max}");
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut z = Zipfian::unscrambled(1000);
        let counts = histogram(&mut z, 1000, 100_000);
        // Rank 0 should dominate: YCSB zipfian(0.99) gives the top item
        // several percent of all draws.
        assert!(counts[0] > 3_000, "top item count = {}", counts[0]);
        // And the tail should still be hit.
        let tail_hits: usize = counts[500..].iter().sum();
        assert!(tail_hits > 1_000, "tail hits = {tail_hits}");
        // Monotone-ish decay between head ranks.
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[100]);
    }

    #[test]
    fn scrambled_zipfian_spreads_hotness() {
        let mut z = Zipfian::new(1000);
        let counts = histogram(&mut z, 1000, 100_000);
        // The hottest item is no longer index 0, but SOME item is hot.
        let max = *counts.iter().max().unwrap();
        assert!(max > 3_000, "hottest = {max}");
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut z = Zipfian::new(10);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.next_index(&mut rng) < 10);
        }
    }

    #[test]
    fn latest_prefers_recent() {
        let mut l = Latest::new(1000);
        let counts = histogram(&mut l, 1000, 100_000);
        // The newest item (index 999) must be the hottest region.
        let newest: usize = counts[900..].iter().sum();
        let oldest: usize = counts[..100].iter().sum();
        assert!(
            newest > 10 * oldest.max(1),
            "newest={newest} oldest={oldest}"
        );
    }

    #[test]
    fn latest_tracks_growth() {
        let mut l = Latest::new(10);
        l.set_item_count(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_high = false;
        for _ in 0..1000 {
            if l.next_index(&mut rng) > 900 {
                saw_high = true;
            }
        }
        assert!(saw_high);
    }

    #[test]
    fn single_item_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Uniform::new(1).next_index(&mut rng), 0);
        assert_eq!(Zipfian::new(1).next_index(&mut rng), 0);
        assert_eq!(Latest::new(1).next_index(&mut rng), 0);
        // Zero clamps to one item rather than panicking.
        assert_eq!(Uniform::new(0).next_index(&mut rng), 0);
    }

    #[test]
    fn fnv_is_deterministic_and_spreading() {
        assert_eq!(fnv1a_64(42), fnv1a_64(42));
        assert_ne!(fnv1a_64(1), fnv1a_64(2));
    }
}
