//! YCSB-style workload generation (Cooper et al., SoCC 2010).
//!
//! The paper's evaluation (§6.1) is driven by YCSB: *"For the
//! evaluation we use workload A with a mix of 50/50 PUT and GET
//! operations"*, 1000 records, 40-byte keys, value sizes from 100 to
//! 2500 bytes. This crate reimplements the YCSB core-workload
//! machinery needed to regenerate those experiments:
//!
//! * [`dist`] — request-distribution generators (uniform, zipfian with
//!   the standard Gray et al. incremental algorithm and YCSB's hash
//!   scrambling, latest);
//! * [`workload`] — the core workload: key/value shaping, operation
//!   mix, presets A–F.
//!
//! The generator is deliberately independent of the KVS crates: it
//! emits abstract [`workload::WorkloadOp`]s that each consumer maps to
//! its own operation type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod workload;

pub use workload::{CoreWorkload, Mix, WorkloadConfig, WorkloadOp, WorkloadPreset};
