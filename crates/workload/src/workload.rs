//! The YCSB core workload: key shaping, operation mix, presets.

use rand::Rng;

use crate::dist::{KeyChooser, Latest, Uniform, Zipfian};

/// An abstract workload operation; consumers map these onto their
/// store's operation type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Read one record.
    Read(Vec<u8>),
    /// Overwrite one record.
    Update(Vec<u8>, Vec<u8>),
    /// Insert a new record.
    Insert(Vec<u8>, Vec<u8>),
    /// Read a record, then write it back modified.
    ReadModifyWrite(Vec<u8>, Vec<u8>),
    /// Read up to `.1` records in key order starting at key `.0`.
    Scan(Vec<u8>, u32),
}

impl WorkloadOp {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            WorkloadOp::Read(k)
            | WorkloadOp::Update(k, _)
            | WorkloadOp::Insert(k, _)
            | WorkloadOp::ReadModifyWrite(k, _)
            | WorkloadOp::Scan(k, _) => k,
        }
    }

    /// Whether this operation mutates the store.
    pub fn is_write(&self) -> bool {
        !matches!(self, WorkloadOp::Read(_) | WorkloadOp::Scan(..))
    }
}

/// Operation mix proportions (must sum to 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates (overwrites).
    pub update: f64,
    /// Fraction of inserts (growing the keyspace).
    pub insert: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
    /// Fraction of ordered range scans (YCSB workload E).
    pub scan: f64,
}

impl Mix {
    fn validate(&self) -> bool {
        let sum = self.read + self.update + self.insert + self.rmw + self.scan;
        (sum - 1.0).abs() < 1e-9
            && self.read >= 0.0
            && self.update >= 0.0
            && self.insert >= 0.0
            && self.rmw >= 0.0
            && self.scan >= 0.0
    }
}

/// Request-distribution selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform over all records.
    Uniform,
    /// Scrambled zipfian (YCSB default).
    Zipfian,
    /// Skewed towards recently inserted records.
    Latest,
}

/// The standard YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// A — update heavy: 50/50 read/update, zipfian. (The paper's
    /// evaluation workload.)
    A,
    /// B — read mostly: 95/5 read/update, zipfian.
    B,
    /// C — read only, zipfian.
    C,
    /// D — read latest: 95/5 read/insert, latest distribution.
    D,
    /// E — short ranges: 95/5 scan/insert, zipfian start keys,
    /// uniform scan lengths up to 100 (the YCSB defaults).
    E,
    /// F — read-modify-write: 50/50 read/RMW, zipfian.
    F,
}

/// Configuration of a [`CoreWorkload`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of records loaded before the run (YCSB `recordcount`).
    pub record_count: u64,
    /// Key length in bytes; keys are zero-padded decimal ranks with a
    /// `user` prefix, exactly `key_len` bytes (paper: 40-byte keys).
    pub key_len: usize,
    /// Value length in bytes (paper: 100 B default, up to 2500 B).
    pub value_len: usize,
    /// Operation mix.
    pub mix: Mix,
    /// Request distribution.
    pub distribution: Distribution,
}

impl WorkloadConfig {
    /// The paper's evaluation configuration: workload A over 1000
    /// records with 40-byte keys and `value_len`-byte values.
    pub fn paper_default(value_len: usize) -> Self {
        WorkloadConfig {
            record_count: 1000,
            key_len: 40,
            value_len,
            ..WorkloadPreset::A.config()
        }
    }
}

impl WorkloadPreset {
    /// The standard configuration of this preset (1000 records, 40 B
    /// keys, 100 B values — override fields as needed).
    pub fn config(self) -> WorkloadConfig {
        let (mix, distribution) = match self {
            WorkloadPreset::A => (
                Mix {
                    read: 0.5,
                    update: 0.5,
                    insert: 0.0,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Zipfian,
            ),
            WorkloadPreset::B => (
                Mix {
                    read: 0.95,
                    update: 0.05,
                    insert: 0.0,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Zipfian,
            ),
            WorkloadPreset::C => (
                Mix {
                    read: 1.0,
                    update: 0.0,
                    insert: 0.0,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Zipfian,
            ),
            WorkloadPreset::D => (
                Mix {
                    read: 0.95,
                    update: 0.0,
                    insert: 0.05,
                    rmw: 0.0,
                    scan: 0.0,
                },
                Distribution::Latest,
            ),
            WorkloadPreset::E => (
                Mix {
                    read: 0.0,
                    update: 0.0,
                    insert: 0.05,
                    rmw: 0.0,
                    scan: 0.95,
                },
                Distribution::Zipfian,
            ),
            WorkloadPreset::F => (
                Mix {
                    read: 0.5,
                    update: 0.0,
                    insert: 0.0,
                    rmw: 0.5,
                    scan: 0.0,
                },
                Distribution::Zipfian,
            ),
        };
        WorkloadConfig {
            record_count: 1000,
            key_len: 40,
            value_len: 100,
            mix,
            distribution,
        }
    }
}

enum Chooser {
    Uniform(Uniform),
    Zipfian(Zipfian),
    Latest(Latest),
}

impl Chooser {
    fn next<R: Rng>(&mut self, rng: &mut R) -> u64 {
        match self {
            Chooser::Uniform(c) => c.next_index(rng),
            Chooser::Zipfian(c) => c.next_index(rng),
            Chooser::Latest(c) => c.next_index(rng),
        }
    }
    fn set_item_count(&mut self, n: u64) {
        match self {
            Chooser::Uniform(c) => c.set_item_count(n),
            Chooser::Zipfian(c) => c.set_item_count(n),
            Chooser::Latest(c) => c.set_item_count(n),
        }
    }
}

/// The YCSB core workload generator.
///
/// # Example
///
/// ```
/// use lcm_workload::{CoreWorkload, WorkloadPreset};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut wl = CoreWorkload::new(WorkloadPreset::A.config()).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// // Load phase: one insert per record.
/// let load: Vec<_> = wl.load_ops().collect();
/// assert_eq!(load.len(), 1000);
/// // Run phase.
/// let op = wl.next_op(&mut rng);
/// assert_eq!(op.key().len(), 40);
/// ```
pub struct CoreWorkload {
    config: WorkloadConfig,
    chooser: Chooser,
    record_count: u64,
    insert_counter: u64,
}

impl std::fmt::Debug for CoreWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreWorkload")
            .field("config", &self.config)
            .field("records", &self.record_count)
            .finish()
    }
}

impl CoreWorkload {
    /// Creates a workload from `config`.
    ///
    /// # Errors
    ///
    /// Returns a description when the mix does not sum to 1 or the key
    /// length cannot hold the `user` prefix plus a rank.
    pub fn new(config: WorkloadConfig) -> Result<Self, String> {
        if !config.mix.validate() {
            return Err("operation mix must be non-negative and sum to 1.0".into());
        }
        if config.key_len < 12 {
            return Err("key_len must be at least 12 bytes".into());
        }
        if config.record_count == 0 {
            return Err("record_count must be positive".into());
        }
        let chooser = match config.distribution {
            Distribution::Uniform => Chooser::Uniform(Uniform::new(config.record_count)),
            Distribution::Zipfian => Chooser::Zipfian(Zipfian::new(config.record_count)),
            Distribution::Latest => Chooser::Latest(Latest::new(config.record_count)),
        };
        Ok(CoreWorkload {
            record_count: config.record_count,
            insert_counter: config.record_count,
            config,
            chooser,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Builds the key for record `rank`: `user`-prefixed, zero-padded,
    /// exactly `key_len` bytes.
    pub fn key_for(&self, rank: u64) -> Vec<u8> {
        let digits = self.config.key_len - 4;
        format!("user{rank:0>digits$}").into_bytes()
    }

    /// Generates the value for one write: `value_len` pseudo-random
    /// printable bytes.
    pub fn value<R: Rng>(&self, rng: &mut R) -> Vec<u8> {
        (0..self.config.value_len)
            .map(|_| rng.gen_range(b' '..=b'~'))
            .collect()
    }

    /// The load phase: one insert per initial record.
    pub fn load_ops(&self) -> impl Iterator<Item = WorkloadOp> + '_ {
        (0..self.config.record_count).map(move |rank| {
            // Deterministic load values keyed by rank.
            let value = vec![b'x'; self.config.value_len];
            WorkloadOp::Insert(self.key_for(rank), value)
        })
    }

    /// Draws the next run-phase operation.
    pub fn next_op<R: Rng>(&mut self, rng: &mut R) -> WorkloadOp {
        let die: f64 = rng.gen();
        let mix = self.config.mix;
        let rank = self.chooser.next(rng) % self.record_count;
        let key = self.key_for(rank);
        if die < mix.read {
            WorkloadOp::Read(key)
        } else if die < mix.read + mix.update {
            let value = self.value(rng);
            WorkloadOp::Update(key, value)
        } else if die < mix.read + mix.update + mix.insert {
            let rank = self.insert_counter;
            self.insert_counter += 1;
            self.record_count += 1;
            self.chooser.set_item_count(self.record_count);
            let value = self.value(rng);
            WorkloadOp::Insert(self.key_for(rank), value)
        } else if die < mix.read + mix.update + mix.insert + mix.scan {
            // YCSB default: uniform scan lengths in 1..=100.
            WorkloadOp::Scan(key, rng.gen_range(1..=100))
        } else {
            let value = self.value(rng);
            WorkloadOp::ReadModifyWrite(key, value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_a_mix_is_50_50() {
        let mut wl = CoreWorkload::new(WorkloadPreset::A.config()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut reads = 0;
        let mut updates = 0;
        for _ in 0..10_000 {
            match wl.next_op(&mut rng) {
                WorkloadOp::Read(_) => reads += 1,
                WorkloadOp::Update(..) => updates += 1,
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!((4_500..=5_500).contains(&reads), "reads = {reads}");
        assert_eq!(reads + updates, 10_000);
    }

    #[test]
    fn workload_c_is_read_only() {
        let mut wl = CoreWorkload::new(WorkloadPreset::C.config()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(matches!(wl.next_op(&mut rng), WorkloadOp::Read(_)));
        }
    }

    #[test]
    fn workload_d_inserts_grow_keyspace() {
        let mut wl = CoreWorkload::new(WorkloadPreset::D.config()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut inserts = 0;
        for _ in 0..10_000 {
            if let WorkloadOp::Insert(key, _) = wl.next_op(&mut rng) {
                inserts += 1;
                // New keys continue the rank sequence.
                assert!(key.starts_with(b"user"));
            }
        }
        assert!((300..=800).contains(&inserts), "inserts = {inserts}");
        assert_eq!(wl.record_count, 1000 + inserts);
    }

    #[test]
    fn workload_e_is_scan_heavy() {
        let mut wl = CoreWorkload::new(WorkloadPreset::E.config()).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut scans = 0;
        let mut inserts = 0;
        for _ in 0..2_000 {
            match wl.next_op(&mut rng) {
                WorkloadOp::Scan(start, limit) => {
                    scans += 1;
                    assert!(start.starts_with(b"user"));
                    assert!((1..=100).contains(&limit));
                }
                WorkloadOp::Insert(..) => inserts += 1,
                other => panic!("unexpected op in workload E: {other:?}"),
            }
        }
        assert!(scans > 1_800, "scans = {scans}");
        assert!(inserts > 40, "inserts = {inserts}");
    }

    #[test]
    fn workload_f_has_rmw() {
        let mut wl = CoreWorkload::new(WorkloadPreset::F.config()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rmw = (0..1_000)
            .filter(|_| matches!(wl.next_op(&mut rng), WorkloadOp::ReadModifyWrite(..)))
            .count();
        assert!((400..=600).contains(&rmw), "rmw = {rmw}");
    }

    #[test]
    fn keys_have_exact_length() {
        for preset in [WorkloadPreset::A, WorkloadPreset::D] {
            let mut wl = CoreWorkload::new(preset.config()).unwrap();
            let mut rng = StdRng::seed_from_u64(6);
            for _ in 0..100 {
                assert_eq!(wl.next_op(&mut rng).key().len(), 40);
            }
        }
    }

    #[test]
    fn values_have_configured_length() {
        let config = WorkloadConfig::paper_default(2500);
        let mut wl = CoreWorkload::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        loop {
            if let WorkloadOp::Update(_, v) = wl.next_op(&mut rng) {
                assert_eq!(v.len(), 2500);
                break;
            }
        }
    }

    #[test]
    fn load_ops_cover_all_records() {
        let wl = CoreWorkload::new(WorkloadPreset::A.config()).unwrap();
        let keys: std::collections::BTreeSet<Vec<u8>> =
            wl.load_ops().map(|op| op.key().to_vec()).collect();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut bad = WorkloadPreset::A.config();
        bad.mix.read = 0.9; // sums to 1.4
        assert!(CoreWorkload::new(bad).is_err());

        let mut bad = WorkloadPreset::A.config();
        bad.key_len = 4;
        assert!(CoreWorkload::new(bad).is_err());

        let mut bad = WorkloadPreset::A.config();
        bad.record_count = 0;
        assert!(CoreWorkload::new(bad).is_err());
    }

    #[test]
    fn zipfian_requests_are_skewed_over_keys() {
        let mut wl = CoreWorkload::new(WorkloadPreset::A.config()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts: std::collections::HashMap<Vec<u8>, usize> = Default::default();
        for _ in 0..20_000 {
            let op = wl.next_op(&mut rng);
            *counts.entry(op.key().to_vec()).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 200, "hottest key hit {max} times");
    }

    #[test]
    fn op_kind_predicates() {
        assert!(!WorkloadOp::Read(vec![]).is_write());
        assert!(WorkloadOp::Update(vec![], vec![]).is_write());
        assert!(WorkloadOp::Insert(vec![], vec![]).is_write());
        assert!(WorkloadOp::ReadModifyWrite(vec![], vec![]).is_write());
    }
}
