//! Enclave lifecycle: isolated execution contexts with volatile memory.

use std::fmt;

use rand::RngCore;

use crate::measurement::Measurement;
use crate::platform::{TeePlatform, TeeServices};
use crate::{Result, TeeError};

/// A program that can run inside an [`Enclave`].
///
/// The program's fields *are* the protected memory `M` of the paper's
/// system model: they exist only while the enclave is running, the host
/// can reach them only through [`EnclaveProgram::ecall`], and they are
/// destroyed whenever the enclave stops. Anything that must survive an
/// epoch must be sealed (with [`TeeServices::sealing_key`]) and handed
/// to the untrusted host for storage — which is exactly the attack
/// surface the LCM protocol defends.
pub trait EnclaveProgram: Sized {
    /// The measurement (code identity) of this program.
    fn measurement() -> Measurement;

    /// Constructs the program state for a new epoch.
    ///
    /// Called on every enclave start/restart with fresh [`TeeServices`].
    fn boot(services: TeeServices) -> Self;

    /// Handles one call from the untrusted host.
    ///
    /// Both `input` and the return value cross the trust boundary and
    /// must be treated as untrusted / encrypted accordingly by the
    /// program.
    fn ecall(&mut self, input: &[u8]) -> Vec<u8>;
}

/// An SGX-like enclave hosting a program `P` on a [`TeePlatform`].
///
/// The *host* (which may be malicious) owns this value and controls the
/// lifecycle: it can start, stop, and restart the enclave at any time,
/// and can create arbitrarily many enclaves for the same program — the
/// basis of forking attacks. What it cannot do is inspect or mutate the
/// program state other than through [`Enclave::ecall`].
///
/// # Example
///
/// ```
/// use lcm_tee::enclave::{Enclave, EnclaveProgram};
/// use lcm_tee::measurement::Measurement;
/// use lcm_tee::platform::{TeePlatform, TeeServices};
///
/// struct Counter { n: u64 }
/// impl EnclaveProgram for Counter {
///     fn measurement() -> Measurement { Measurement::of_program("counter", "1") }
///     fn boot(_s: TeeServices) -> Self { Counter { n: 0 } }
///     fn ecall(&mut self, _input: &[u8]) -> Vec<u8> {
///         self.n += 1;
///         self.n.to_be_bytes().to_vec()
///     }
/// }
///
/// # fn main() -> Result<(), lcm_tee::TeeError> {
/// let platform = TeePlatform::new_deterministic(1);
/// let mut enclave = Enclave::<Counter>::create(&platform);
/// enclave.start()?;
/// enclave.ecall(b"")?;
/// enclave.restart()?; // volatile memory is lost
/// assert_eq!(enclave.ecall(b"")?, 1u64.to_be_bytes());
/// # Ok(())
/// # }
/// ```
pub struct Enclave<P: EnclaveProgram> {
    platform: TeePlatform,
    program: Option<P>,
    epoch: u64,
}

impl<P: EnclaveProgram> fmt::Debug for Enclave<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Enclave")
            .field("platform", &self.platform.id())
            .field("measurement", &P::measurement())
            .field("running", &self.program.is_some())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl<P: EnclaveProgram> Enclave<P> {
    /// Creates the enclave in the stopped state.
    pub fn create(platform: &TeePlatform) -> Self {
        Enclave {
            platform: platform.clone(),
            program: None,
            epoch: 0,
        }
    }

    /// Starts a new epoch: boots a fresh program instance.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::EnclaveAlreadyRunning`] if already running.
    pub fn start(&mut self) -> Result<()> {
        if self.program.is_some() {
            return Err(TeeError::EnclaveAlreadyRunning);
        }
        self.epoch += 1;
        let services = TeeServices {
            platform: self.platform.inner.clone(),
            measurement: P::measurement(),
            rng_seed: self.rng_seed_for_epoch(),
        };
        self.program = Some(P::boot(services));
        Ok(())
    }

    /// Stops the enclave, destroying all volatile program state.
    ///
    /// Stopping an already-stopped enclave is a no-op: the host may
    /// "crash" the enclave at any time.
    pub fn stop(&mut self) {
        self.program = None;
    }

    /// Stops (if running) and starts a new epoch.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns the error from
    /// [`Enclave::start`] for forward compatibility.
    pub fn restart(&mut self) -> Result<()> {
        self.stop();
        self.start()
    }

    /// Whether the enclave is currently running.
    pub fn is_running(&self) -> bool {
        self.program.is_some()
    }

    /// The number of times this enclave has been started.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The platform hosting this enclave.
    pub fn platform(&self) -> &TeePlatform {
        &self.platform
    }

    /// Invokes the program with `input` and returns its output.
    ///
    /// When the hosting platform models an enclave-transition cost
    /// ([`TeePlatform::set_ecall_cost`]), the calling thread occupies
    /// the enclave for that long before the program runs — so callers
    /// that serialize access to one enclave (a mutex around the
    /// server) serialize the modelled cost too, while calls into
    /// distinct enclaves overlap.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::EnclaveNotRunning`] if the enclave is stopped.
    pub fn ecall(&mut self, input: &[u8]) -> Result<Vec<u8>> {
        match self.program.as_mut() {
            Some(p) => {
                let cost = self.platform.ecall_cost();
                if !cost.is_zero() {
                    std::thread::sleep(cost);
                }
                Ok(p.ecall(input))
            }
            None => Err(TeeError::EnclaveNotRunning),
        }
    }

    /// Direct access to the program for test assertions.
    ///
    /// This deliberately breaks the isolation boundary and is only
    /// compiled for tests within this workspace.
    #[doc(hidden)]
    pub fn program_for_tests(&mut self) -> Option<&mut P> {
        self.program.as_mut()
    }

    fn rng_seed_for_epoch(&self) -> u64 {
        // Mix platform identity and epoch so each epoch sees an
        // independent but reproducible stream; add OS entropy when the
        // platform is not deterministic (the seed already differs).
        let mut seed = self
            .platform
            .id()
            .0
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.epoch);
        // Stir in a little ambient entropy; determinism across runs is
        // preserved for code that uses TeeServices::rng only through
        // seeded platforms in tests (they re-derive from services, not
        // from thread_rng).
        if cfg!(not(test)) {
            seed ^= rand::thread_rng().next_u64();
        }
        seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::TeePlatform;

    struct Echo {
        calls: u32,
    }

    impl EnclaveProgram for Echo {
        fn measurement() -> Measurement {
            Measurement::of_program("echo", "1")
        }
        fn boot(_services: TeeServices) -> Self {
            Echo { calls: 0 }
        }
        fn ecall(&mut self, input: &[u8]) -> Vec<u8> {
            self.calls += 1;
            let mut out = self.calls.to_be_bytes().to_vec();
            out.extend_from_slice(input);
            out
        }
    }

    #[test]
    fn ecall_requires_running() {
        let platform = TeePlatform::new_deterministic(1);
        let mut e = Enclave::<Echo>::create(&platform);
        assert_eq!(e.ecall(b"x"), Err(TeeError::EnclaveNotRunning));
        e.start().unwrap();
        assert!(e.ecall(b"x").is_ok());
    }

    #[test]
    fn double_start_rejected() {
        let platform = TeePlatform::new_deterministic(1);
        let mut e = Enclave::<Echo>::create(&platform);
        e.start().unwrap();
        assert_eq!(e.start(), Err(TeeError::EnclaveAlreadyRunning));
    }

    #[test]
    fn restart_loses_volatile_state() {
        let platform = TeePlatform::new_deterministic(1);
        let mut e = Enclave::<Echo>::create(&platform);
        e.start().unwrap();
        e.ecall(b"").unwrap();
        e.ecall(b"").unwrap();
        assert_eq!(e.program_for_tests().unwrap().calls, 2);
        e.restart().unwrap();
        assert_eq!(e.program_for_tests().unwrap().calls, 0);
    }

    #[test]
    fn epochs_count_starts() {
        let platform = TeePlatform::new_deterministic(1);
        let mut e = Enclave::<Echo>::create(&platform);
        assert_eq!(e.epoch(), 0);
        e.start().unwrap();
        assert_eq!(e.epoch(), 1);
        e.restart().unwrap();
        e.restart().unwrap();
        assert_eq!(e.epoch(), 3);
    }

    #[test]
    fn stop_is_idempotent() {
        let platform = TeePlatform::new_deterministic(1);
        let mut e = Enclave::<Echo>::create(&platform);
        e.stop();
        e.start().unwrap();
        e.stop();
        e.stop();
        assert!(!e.is_running());
    }

    #[test]
    fn modelled_ecall_cost_occupies_the_caller() {
        let platform = TeePlatform::new_deterministic(1);
        let mut e = Enclave::<Echo>::create(&platform);
        e.start().unwrap();
        // Free by default; setting the cost on any handle clone takes
        // effect on the already-running enclave.
        assert_eq!(platform.ecall_cost(), std::time::Duration::ZERO);
        platform.set_ecall_cost(std::time::Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        e.ecall(b"").unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn multiple_instances_of_same_program() {
        // A malicious host can multiplex several copies of T.
        let platform = TeePlatform::new_deterministic(1);
        let mut e1 = Enclave::<Echo>::create(&platform);
        let mut e2 = Enclave::<Echo>::create(&platform);
        e1.start().unwrap();
        e2.start().unwrap();
        e1.ecall(b"").unwrap();
        assert_eq!(e1.program_for_tests().unwrap().calls, 1);
        assert_eq!(e2.program_for_tests().unwrap().calls, 0);
    }
}
