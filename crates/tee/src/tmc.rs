//! Trusted monotonic counters (TMC).
//!
//! The baseline LCM is compared against in §6.5 of the paper: an
//! SGX-secured service that increments a hardware monotonic counter on
//! every request to detect rollbacks immediately. The defining property
//! of real TMCs (TPM or Intel ME backed) is their cost — the paper
//! measures **60 ms per increment** on Windows SGX and cites 35–95 ms
//! across platforms — plus non-volatility and wear-out limits.
//!
//! [`Tmc`] emulates a counter bound to one platform. Increments return
//! the configured latency as data so that the discrete-event simulator
//! can charge it in virtual time; [`Tmc::increment_blocking`] actually
//! sleeps, for wall-clock demos. Like the hardware, the counter value
//! survives enclave restarts (it lives on the platform, not in enclave
//! memory) but is *not* transferable between platforms — the
//! location-transparency drawback §3.1 highlights.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{Result, TeeError};

/// Default per-increment latency, matching the paper's measurement of
/// the Intel ME counter on Windows (§6.5).
pub const DEFAULT_INCREMENT_LATENCY: Duration = Duration::from_millis(60);

/// Default wear-out budget. TPM NV memory is typically rated for a few
/// hundred thousand write cycles; the paper cites wear-out as a real
/// limitation of frequently-used TMCs (§7).
pub const DEFAULT_WEAR_OUT_LIMIT: u64 = 1_000_000;

/// Configuration for an emulated trusted monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmcConfig {
    /// Simulated latency of one increment.
    pub increment_latency: Duration,
    /// Simulated latency of one read (fast relative to increments).
    pub read_latency: Duration,
    /// Number of increments before the counter wears out; `u64::MAX`
    /// disables wear-out.
    pub wear_out_limit: u64,
}

impl Default for TmcConfig {
    fn default() -> Self {
        TmcConfig {
            increment_latency: DEFAULT_INCREMENT_LATENCY,
            read_latency: Duration::from_micros(100),
            wear_out_limit: DEFAULT_WEAR_OUT_LIMIT,
        }
    }
}

struct TmcState {
    value: u64,
    increments: u64,
}

/// An emulated trusted monotonic counter.
///
/// Clone handles share the same underlying counter (the counter lives in
/// platform hardware; every enclave epoch sees the same value).
///
/// # Example
///
/// ```
/// use lcm_tee::tmc::{Tmc, TmcConfig};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), lcm_tee::TeeError> {
/// let tmc = Tmc::new(TmcConfig {
///     increment_latency: Duration::from_millis(60),
///     ..TmcConfig::default()
/// });
/// let (value, cost) = tmc.increment()?;
/// assert_eq!(value, 1);
/// assert_eq!(cost, Duration::from_millis(60));
/// assert_eq!(tmc.read().0, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Tmc {
    config: TmcConfig,
    state: Arc<Mutex<TmcState>>,
}

impl fmt::Debug for Tmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tmc")
            .field("value", &self.state.lock().value)
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Tmc {
    fn default() -> Self {
        Self::new(TmcConfig::default())
    }
}

impl Tmc {
    /// Creates a counter at zero with the given cost configuration.
    pub fn new(config: TmcConfig) -> Self {
        Tmc {
            config,
            state: Arc::new(Mutex::new(TmcState {
                value: 0,
                increments: 0,
            })),
        }
    }

    /// Increments the counter, returning the new value and the simulated
    /// latency the increment costs.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::CounterOverflow`] once the wear-out limit is
    /// reached (the hardware refuses further writes) or the value would
    /// wrap.
    pub fn increment(&self) -> Result<(u64, Duration)> {
        let mut state = self.state.lock();
        if state.increments >= self.config.wear_out_limit || state.value == u64::MAX {
            return Err(TeeError::CounterOverflow);
        }
        state.value += 1;
        state.increments += 1;
        Ok((state.value, self.config.increment_latency))
    }

    /// Increments and actually sleeps for the configured latency —
    /// reproduces real TMC behaviour in wall-clock examples.
    ///
    /// # Errors
    ///
    /// Same as [`Tmc::increment`].
    pub fn increment_blocking(&self) -> Result<u64> {
        let (value, latency) = self.increment()?;
        std::thread::sleep(latency);
        Ok(value)
    }

    /// Reads the current value and the simulated read latency.
    pub fn read(&self) -> (u64, Duration) {
        (self.state.lock().value, self.config.read_latency)
    }

    /// Number of increments performed (wear tracking).
    pub fn wear(&self) -> u64 {
        self.state.lock().increments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_are_monotonic() {
        let tmc = Tmc::default();
        let mut last = 0;
        for _ in 0..10 {
            let (v, _) = tmc.increment().unwrap();
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn read_does_not_advance() {
        let tmc = Tmc::default();
        tmc.increment().unwrap();
        assert_eq!(tmc.read().0, 1);
        assert_eq!(tmc.read().0, 1);
    }

    #[test]
    fn clones_share_state() {
        let tmc = Tmc::default();
        let other = tmc.clone();
        tmc.increment().unwrap();
        assert_eq!(other.read().0, 1);
    }

    #[test]
    fn increment_reports_configured_latency() {
        let config = TmcConfig {
            increment_latency: Duration::from_millis(95),
            ..TmcConfig::default()
        };
        let tmc = Tmc::new(config);
        assert_eq!(tmc.increment().unwrap().1, Duration::from_millis(95));
    }

    #[test]
    fn wear_out_enforced() {
        let config = TmcConfig {
            wear_out_limit: 3,
            ..TmcConfig::default()
        };
        let tmc = Tmc::new(config);
        for _ in 0..3 {
            tmc.increment().unwrap();
        }
        assert_eq!(tmc.increment(), Err(TeeError::CounterOverflow));
        assert_eq!(tmc.wear(), 3);
    }

    #[test]
    fn blocking_increment_sleeps() {
        let config = TmcConfig {
            increment_latency: Duration::from_millis(5),
            ..TmcConfig::default()
        };
        let tmc = Tmc::new(config);
        let start = std::time::Instant::now();
        tmc.increment_blocking().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
