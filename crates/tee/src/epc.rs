//! Enclave Page Cache (EPC) cost model.
//!
//! SGX v1 limits the EPC to 128 MB; once an enclave's working set
//! exceeds the usable portion (~93 MB after system structures), the
//! kernel driver swaps EPC pages to DRAM through the memory-encryption
//! engine, which is expensive. Paper §6.2 measures this on the KVS:
//!
//! * `std::map<std::string, std::string>` imposes ≈ **134 % memory
//!   overhead** — a 40 B key + 100 B value pair occupies ≈ 280 B of
//!   strings plus 48 B of red-black-tree node per object (≈ 328 B total
//!   vs the 140 B payload);
//! * **300 000 objects ≈ 93 MB** of enclave heap, the onset of paging;
//! * past that point operation latency rises by up to **240 %**.
//!
//! [`EpcModel`] turns a resident-heap size into an access-penalty
//! multiplier, and [`MapMemoryModel`] reproduces the `std::map` heap
//! accounting so the §6.2 experiment can be regenerated without SGX
//! hardware.

use serde::{Deserialize, Serialize};

/// Reproduction of the paper's measured `std::map` storage overhead.
///
/// # Example
///
/// ```
/// use lcm_tee::epc::MapMemoryModel;
///
/// let model = MapMemoryModel::default();
/// // Paper §6.2: 300k objects of 40 B keys / 100 B values ≈ 93 MB.
/// let bytes = model.heap_for_objects(300_000, 40, 100);
/// assert!((90..100).contains(&(bytes / 1_000_000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapMemoryModel {
    /// Fixed allocator/string overhead added to each stored string.
    pub per_string_overhead: usize,
    /// Tree-node bookkeeping bytes per object (paper: 48 B).
    pub per_node_overhead: usize,
}

impl Default for MapMemoryModel {
    fn default() -> Self {
        // Calibrated to the paper's numbers: a (40+100) B pair consumes
        // ~280 B of string storage (2 strings × (payload + 70 B overhead))
        // plus 48 B of node overhead ⇒ 328 B/object ⇒ 134% overhead and
        // 93 MB @ 300k objects (with malloc rounding).
        MapMemoryModel {
            per_string_overhead: 70,
            per_node_overhead: 48,
        }
    }
}

impl MapMemoryModel {
    /// Heap bytes consumed by one stored object.
    pub fn bytes_per_object(&self, key_len: usize, value_len: usize) -> usize {
        let strings = key_len + value_len + 2 * self.per_string_overhead;
        strings + self.per_node_overhead
    }

    /// Heap bytes consumed by `n` stored objects.
    pub fn heap_for_objects(&self, n: usize, key_len: usize, value_len: usize) -> usize {
        n * self.bytes_per_object(key_len, value_len)
    }

    /// Memory overhead factor relative to raw payload (paper: ≈ 1.34,
    /// i.e. 134 % extra space).
    pub fn overhead_factor(&self, key_len: usize, value_len: usize) -> f64 {
        let payload = (key_len + value_len) as f64;
        let total = self.bytes_per_object(key_len, value_len) as f64;
        (total - payload) / payload
    }
}

/// EPC paging penalty model.
///
/// Below the usable EPC size, accesses run at native enclave speed
/// (penalty 1.0). Above it, the probability that an access touches a
/// swapped page grows with the excess working set, and each miss costs a
/// large constant factor — producing the latency knee of paper §6.2 that
/// saturates around +240 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpcModel {
    /// Total EPC size in bytes (SGX v1: 128 MB).
    pub epc_bytes: usize,
    /// Fraction of the EPC usable by enclave heap after SGX metadata
    /// (≈ 93 MB / 128 MB).
    pub usable_fraction: f64,
    /// Latency multiplier for an access that faults on a swapped page.
    pub miss_penalty: f64,
}

impl Default for EpcModel {
    fn default() -> Self {
        EpcModel {
            epc_bytes: 128 * 1024 * 1024,
            usable_fraction: 0.73,
            // Calibrated so the asymptotic penalty approaches the
            // paper's +240% (×3.4) as the miss probability approaches
            // the uniform-access limit.
            miss_penalty: 3.4,
        }
    }
}

impl EpcModel {
    /// Usable EPC heap bytes before paging begins.
    pub fn usable_bytes(&self) -> usize {
        (self.epc_bytes as f64 * self.usable_fraction) as usize
    }

    /// Returns the average access-latency multiplier for an enclave
    /// whose resident heap is `heap_bytes`, assuming uniform access.
    ///
    /// Is exactly `1.0` while the heap fits in the usable EPC; ramps
    /// toward [`EpcModel::miss_penalty`] as the heap grows beyond it.
    pub fn access_penalty(&self, heap_bytes: usize) -> f64 {
        let usable = self.usable_bytes() as f64;
        let heap = heap_bytes as f64;
        if heap <= usable {
            return 1.0;
        }
        // Under uniform access, the fraction of touches landing on
        // non-resident pages is (heap - usable) / heap.
        let miss_rate = (heap - usable) / heap;
        1.0 + miss_rate * (self.miss_penalty - 1.0)
    }

    /// Whether a heap of `heap_bytes` triggers paging.
    pub fn is_paging(&self, heap_bytes: usize) -> bool {
        heap_bytes > self.usable_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper() {
        let model = MapMemoryModel::default();
        let factor = model.overhead_factor(40, 100);
        // Paper: "memory overhead of about 134%".
        assert!((1.25..=1.45).contains(&factor), "factor = {factor}");
    }

    #[test]
    fn three_hundred_k_objects_hit_93mb() {
        let model = MapMemoryModel::default();
        let bytes = model.heap_for_objects(300_000, 40, 100);
        let mb = bytes as f64 / 1e6;
        assert!((88.0..=100.0).contains(&mb), "mb = {mb}");
    }

    #[test]
    fn no_penalty_below_usable_epc() {
        let epc = EpcModel::default();
        assert_eq!(epc.access_penalty(10 * 1024 * 1024), 1.0);
        assert_eq!(epc.access_penalty(epc.usable_bytes()), 1.0);
        assert!(!epc.is_paging(epc.usable_bytes()));
    }

    #[test]
    fn penalty_kicks_in_past_usable_epc() {
        let epc = EpcModel::default();
        let p = epc.access_penalty(epc.usable_bytes() + 1024 * 1024);
        assert!(p > 1.0);
        assert!(epc.is_paging(epc.usable_bytes() + 1));
    }

    #[test]
    fn penalty_monotone_and_bounded() {
        let epc = EpcModel::default();
        let mut last = 0.0f64;
        for heap_mb in (50..2000).step_by(50) {
            let p = epc.access_penalty(heap_mb * 1024 * 1024);
            assert!(p >= last, "penalty must be monotone");
            assert!(p <= epc.miss_penalty);
            last = p;
        }
    }

    #[test]
    fn paper_latency_knee_reproduced() {
        // §6.2: latency increases by up to 240% (≈ ×3.4) for large
        // working sets; at 1M objects the penalty should be well above
        // baseline and approaching the cap.
        let epc = EpcModel::default();
        let map = MapMemoryModel::default();
        let at_300k = epc.access_penalty(map.heap_for_objects(300_000, 40, 100));
        let at_1m = epc.access_penalty(map.heap_for_objects(1_000_000, 40, 100));
        assert!(at_300k <= 1.2, "at_300k = {at_300k}");
        assert!(at_1m > 2.0, "at_1m = {at_1m}");
    }
}
