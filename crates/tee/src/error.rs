use std::error::Error;
use std::fmt;

/// Error type for TEE simulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TeeError {
    /// An ecall was issued to an enclave that is not running.
    EnclaveNotRunning,
    /// An enclave was started while already running.
    EnclaveAlreadyRunning,
    /// A quote or report failed cryptographic verification.
    AttestationFailed(&'static str),
    /// Sealed data failed to unseal (wrong key, wrong measurement, or
    /// tampering).
    UnsealFailed,
    /// A trusted monotonic counter would overflow.
    CounterOverflow,
    /// Underlying cryptographic failure.
    Crypto(lcm_crypto::CryptoError),
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::EnclaveNotRunning => write!(f, "enclave is not running"),
            TeeError::EnclaveAlreadyRunning => write!(f, "enclave is already running"),
            TeeError::AttestationFailed(why) => write!(f, "attestation failed: {why}"),
            TeeError::UnsealFailed => write!(f, "sealed blob failed to unseal"),
            TeeError::CounterOverflow => write!(f, "trusted monotonic counter overflow"),
            TeeError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl Error for TeeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TeeError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lcm_crypto::CryptoError> for TeeError {
    fn from(e: lcm_crypto::CryptoError) -> Self {
        TeeError::Crypto(e)
    }
}
