//! Enclave program measurements (MRENCLAVE analogue).

use std::fmt;

use lcm_crypto::sha256::{self, Digest};
use serde::{Deserialize, Serialize};

/// A cryptographic identity of enclave program code.
///
/// In SGX this is the MRENCLAVE value: a hash over the enclave's initial
/// code and data. In this simulator, programs declare their measurement
/// as the hash of a stable name and version string via
/// [`Measurement::of_program`]. Two enclaves report the same measurement
/// exactly when they run the same program, which is all the LCM protocol
/// needs: sealing keys and attestation verdicts are keyed by this value.
///
/// # Example
///
/// ```
/// use lcm_tee::measurement::Measurement;
///
/// let m1 = Measurement::of_program("lcm", "1");
/// let m2 = Measurement::of_program("lcm", "1");
/// let other = Measurement::of_program("lcm", "2");
/// assert_eq!(m1, m2);
/// assert_ne!(m1, other);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Measurement(Digest);

impl Measurement {
    /// Computes the measurement of a program identified by `name` and
    /// `version`.
    pub fn of_program(name: &str, version: &str) -> Self {
        Measurement(sha256::digest_parts(&[
            b"lcm-tee.measurement",
            &[0x00],
            name.as_bytes(),
            &[0x00],
            version.as_bytes(),
        ]))
    }

    /// Wraps a raw digest as a measurement (used when deserializing
    /// reports/quotes; carries no authenticity by itself).
    pub fn from_digest(d: Digest) -> Self {
        Measurement(d)
    }

    /// Returns the raw digest backing this measurement.
    pub fn digest(&self) -> &Digest {
        &self.0
    }

    /// Returns the measurement as bytes (for key-derivation labels).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({:.16}…)", self.0.to_hex())
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.16}", self.0.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            Measurement::of_program("kvs", "1.0"),
            Measurement::of_program("kvs", "1.0")
        );
    }

    #[test]
    fn distinct_programs_distinct_measurements() {
        assert_ne!(
            Measurement::of_program("kvs", "1.0"),
            Measurement::of_program("kvs", "1.1")
        );
        assert_ne!(
            Measurement::of_program("kvs", "1.0"),
            Measurement::of_program("other", "1.0")
        );
    }

    #[test]
    fn name_version_framing_unambiguous() {
        // ("ab","c") must differ from ("a","bc") despite equal concatenation.
        assert_ne!(
            Measurement::of_program("ab", "c"),
            Measurement::of_program("a", "bc")
        );
    }

    #[test]
    fn display_is_short_hex() {
        let m = Measurement::of_program("kvs", "1.0");
        assert_eq!(format!("{m}").len(), 16);
    }
}
