//! TEE-capable platforms and the services they expose to enclaves.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lcm_crypto::hkdf;
use lcm_crypto::hmac::hmac_sha256;
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256::Digest;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::attestation::Report;
use crate::measurement::Measurement;

/// Opaque identifier of a physical platform.
///
/// Not revealed through attestation (quotes are anonymous, as with
/// EPID); used by tests and the simulator to tell machines apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlatformId(pub u64);

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform-{}", self.0)
    }
}

pub(crate) struct PlatformInner {
    pub(crate) id: PlatformId,
    /// Fused-in root secret; everything platform-specific derives from it.
    root_secret: SecretKey,
    /// EPID-style group member secret, installed when the platform joins
    /// an attestation authority. `None` until joined.
    pub(crate) group_secret: parking_lot::Mutex<Option<SecretKey>>,
    /// Manufacturer secret shared by all platforms of one
    /// [`crate::world::TeeWorld`]; enables attested secure-channel key
    /// derivation. `None` for standalone platforms.
    pub(crate) world_secret: Option<SecretKey>,
    /// Modelled enclave-transition cost in nanoseconds, charged by
    /// [`crate::enclave::Enclave::ecall`] while the calling thread
    /// occupies the enclave. `0` (the default) disables the model.
    pub(crate) ecall_cost_ns: AtomicU64,
}

impl PlatformInner {
    /// The sealing key for a program with `measurement` — `get-key(T, P)`
    /// from the paper: deterministic per (platform, program).
    pub(crate) fn sealing_key(&self, measurement: &Measurement) -> SecretKey {
        hkdf::derive_key(
            &self.root_secret,
            b"lcm-tee.sealing",
            measurement.as_bytes(),
        )
    }

    /// Key under which this platform MACs enclave reports for its local
    /// quoting enclave (SGX "report key").
    pub(crate) fn report_key(&self) -> SecretKey {
        hkdf::derive_key(&self.root_secret, b"lcm-tee.report-key", b"")
    }

    pub(crate) fn mac_report(&self, measurement: &Measurement, user_data: &Digest) -> Digest {
        let key = self.report_key();
        let mut data = Vec::with_capacity(64);
        data.extend_from_slice(measurement.as_bytes());
        data.extend_from_slice(user_data.as_bytes());
        hmac_sha256(key.as_bytes(), &data)
    }
}

/// One TEE-capable machine.
///
/// A platform owns a root secret (burned into the CPU in real SGX) from
/// which sealing and report keys derive, and can host any number of
/// [`crate::enclave::Enclave`]s. Restarting an enclave on the *same*
/// platform reproduces the same sealing key; moving the program to a
/// *different* platform yields an unrelated key — this is precisely the
/// property that makes TMC-based rollback protection non-migratable
/// (paper §3.1) and that LCM's migration protocol (§4.6.2) works around.
///
/// # Example
///
/// ```
/// use lcm_tee::platform::TeePlatform;
///
/// let platform = TeePlatform::new_deterministic(1);
/// assert_eq!(platform.id().0, 1);
/// ```
#[derive(Clone)]
pub struct TeePlatform {
    pub(crate) inner: Arc<PlatformInner>,
}

impl fmt::Debug for TeePlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeePlatform")
            .field("id", &self.inner.id)
            .finish()
    }
}

impl TeePlatform {
    /// Creates a platform with a random root secret.
    pub fn new(id: u64) -> Self {
        Self::with_root_secret(id, SecretKey::generate())
    }

    /// Creates a platform whose root secret is derived from `id` alone,
    /// for reproducible tests and simulations.
    pub fn new_deterministic(id: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(id ^ 0x7ee_5eed);
        Self::with_root_secret(id, SecretKey::generate_with(&mut rng))
    }

    fn with_root_secret(id: u64, root_secret: SecretKey) -> Self {
        Self::build(id, root_secret, None)
    }

    pub(crate) fn new_world_member(id: u64, world_secret: SecretKey) -> Self {
        Self::build(id, SecretKey::generate(), Some(world_secret))
    }

    pub(crate) fn new_world_member_deterministic(id: u64, world_secret: SecretKey) -> Self {
        // Derive the root from the world secret so two deterministic
        // platforms with equal ids in DIFFERENT worlds (or a standalone
        // platform with the same id) never share root material.
        let root = lcm_crypto::hkdf::derive_key(
            &world_secret,
            b"lcm-tee.platform-root",
            &id.to_be_bytes(),
        );
        Self::build(id, root, Some(world_secret))
    }

    fn build(id: u64, root_secret: SecretKey, world_secret: Option<SecretKey>) -> Self {
        TeePlatform {
            inner: Arc::new(PlatformInner {
                id: PlatformId(id),
                root_secret,
                group_secret: parking_lot::Mutex::new(None),
                world_secret,
                ecall_cost_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Returns this platform's identifier.
    pub fn id(&self) -> PlatformId {
        self.inner.id
    }

    /// Sets the modelled enclave-transition cost charged on every
    /// [`crate::enclave::Enclave::ecall`] against this platform.
    ///
    /// Real TEE calls are far from free — an SGX ecall/ocall round
    /// trip burns thousands of cycles on the context switch alone, and
    /// the in-enclave work (AEAD, EPC paging) comes on top. Like the
    /// [`crate::tmc::Tmc`] latencies, this knob lets
    /// benchmarks model that occupancy with wall-clock time so that
    /// *ratios* between deployments (e.g. follower-read scale-out
    /// across a replica group) reflect the architecture instead of the
    /// host's core count. Zero — the default everywhere — keeps
    /// ecalls free for functional tests.
    ///
    /// The cost is shared by every clone of this platform handle and
    /// every enclave already hosted on it.
    pub fn set_ecall_cost(&self, cost: Duration) {
        let ns = u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX);
        self.inner.ecall_cost_ns.store(ns, Ordering::Relaxed);
    }

    /// The modelled per-ecall cost; see [`TeePlatform::set_ecall_cost`].
    pub fn ecall_cost(&self) -> Duration {
        Duration::from_nanos(self.inner.ecall_cost_ns.load(Ordering::Relaxed))
    }
}

/// The services a running enclave program may call into its hosting TEE.
///
/// Handed to [`crate::enclave::EnclaveProgram::boot`] each epoch. All
/// methods are safe against the untrusted host: the host never sees the
/// values they return.
#[derive(Clone)]
pub struct TeeServices {
    pub(crate) platform: Arc<PlatformInner>,
    pub(crate) measurement: Measurement,
    pub(crate) rng_seed: u64,
}

impl fmt::Debug for TeeServices {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeServices")
            .field("platform", &self.platform.id)
            .field("measurement", &self.measurement)
            .finish()
    }
}

impl TeeServices {
    /// Constructs services directly, bypassing the enclave lifecycle.
    ///
    /// For unit tests of enclave programs; production code receives
    /// services only through [`crate::enclave::EnclaveProgram::boot`].
    #[doc(hidden)]
    pub fn for_tests(platform: TeePlatform, measurement: Measurement, rng_seed: u64) -> Self {
        TeeServices {
            platform: platform.inner.clone(),
            measurement,
            rng_seed,
        }
    }

    /// `get-key(T, P)`: the sealing key specific to this platform and
    /// the program currently running in the enclave.
    ///
    /// Two enclaves running the same program on the same platform obtain
    /// the same key (across epochs and restarts); any other combination
    /// obtains an unrelated key.
    pub fn sealing_key(&self) -> SecretKey {
        self.platform.sealing_key(&self.measurement)
    }

    /// The measurement of the program running in this enclave.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Produces an attestation [`Report`] binding this enclave's
    /// measurement to caller-chosen `user_data` (e.g. a challenge nonce
    /// plus a key-exchange value).
    pub fn report(&self, user_data: Digest) -> Report {
        Report {
            measurement: self.measurement,
            user_data,
            mac: self.platform.mac_report(&self.measurement, &user_data),
        }
    }

    /// A random-number generator seeded by the TEE.
    ///
    /// Real SGX exposes RDRAND; the simulator gives every epoch an
    /// independent, reproducible stream.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.rng_seed)
    }

    /// Fills `buf` with TEE-sourced randomness.
    pub fn fill_random(&self, buf: &mut [u8]) {
        self.rng().fill_bytes(buf);
    }

    /// The migration-channel key shared by enclaves running this same
    /// program on any platform of the same [`crate::world::TeeWorld`].
    ///
    /// Models the result of an attested enclave-to-enclave key exchange
    /// (paper §4.6.2). Returns `None` on standalone platforms that were
    /// not manufactured by a world.
    pub fn migration_key(&self) -> Option<SecretKey> {
        self.platform
            .world_secret
            .as_ref()
            .map(|ws| crate::world::migration_key_from(ws, &self.measurement))
    }

    /// The provisioning key shared with the trusted admin of this
    /// program — the enclave end of the admin's attested channel
    /// (paper §4.3). Returns `None` on standalone platforms.
    pub fn provision_key(&self) -> Option<SecretKey> {
        self.platform
            .world_secret
            .as_ref()
            .map(|ws| crate::world::provision_key_from(ws, &self.measurement))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealing_key_stable_per_platform_and_program() {
        let p = TeePlatform::new_deterministic(1);
        let m = Measurement::of_program("app", "1");
        assert_eq!(p.inner.sealing_key(&m), p.inner.sealing_key(&m));
    }

    #[test]
    fn sealing_key_differs_across_platforms() {
        let p1 = TeePlatform::new_deterministic(1);
        let p2 = TeePlatform::new_deterministic(2);
        let m = Measurement::of_program("app", "1");
        assert_ne!(p1.inner.sealing_key(&m), p2.inner.sealing_key(&m));
    }

    #[test]
    fn sealing_key_differs_across_programs() {
        let p = TeePlatform::new_deterministic(1);
        let m1 = Measurement::of_program("app", "1");
        let m2 = Measurement::of_program("app", "2");
        assert_ne!(p.inner.sealing_key(&m1), p.inner.sealing_key(&m2));
    }

    #[test]
    fn deterministic_platform_reproducible() {
        let a = TeePlatform::new_deterministic(9);
        let b = TeePlatform::new_deterministic(9);
        let m = Measurement::of_program("app", "1");
        assert_eq!(a.inner.sealing_key(&m), b.inner.sealing_key(&m));
    }

    #[test]
    fn random_platforms_are_distinct() {
        let a = TeePlatform::new(1);
        let b = TeePlatform::new(1);
        let m = Measurement::of_program("app", "1");
        assert_ne!(a.inner.sealing_key(&m), b.inner.sealing_key(&m));
    }
}
