//! A "world" of TEE platforms from one manufacturer, providing
//! attested secure-channel keys.
//!
//! Real SGX establishes secure channels into an enclave by combining
//! remote attestation with a Diffie–Hellman exchange (the admin of the
//! LCM paper provisions `kC`/`kP` through exactly such a channel, §4.3,
//! and migration builds an enclave-to-enclave channel the same way,
//! §4.6.2). This workspace implements only symmetric primitives, so the
//! *outcome* of RA+DH is modelled instead: platforms manufactured in
//! the same [`TeeWorld`] share a manufacturer secret, and from it an
//! enclave can derive
//!
//! * a **provisioning key** shared with the trusted admin
//!   ([`TeeWorld::admin_provision_key`] /
//!   [`crate::platform::TeeServices::provision_key`]), and
//! * a **migration key** shared only between enclaves running the *same
//!   program* on any world platform
//!   ([`crate::platform::TeeServices::migration_key`]).
//!
//! The untrusted host never holds these keys, which is the only
//! property the protocol layer relies on. The admin holding the
//! provisioning key is faithful: the admin is trusted in the paper's
//! model and is the party the RA-DH channel would terminate at.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lcm_crypto::hkdf;
use lcm_crypto::keys::SecretKey;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::attestation::AttestationAuthority;
use crate::measurement::Measurement;
use crate::platform::TeePlatform;

/// A family of TEE platforms sharing a manufacturer root and an
/// attestation authority.
///
/// # Example
///
/// ```
/// use lcm_tee::world::TeeWorld;
/// use lcm_tee::measurement::Measurement;
///
/// let world = TeeWorld::new_deterministic(7);
/// let platform_a = world.platform(1);
/// let platform_b = world.platform(2);
/// let m = Measurement::of_program("lcm", "1");
/// // Same program on different platforms derives the same migration key.
/// assert_eq!(
///     world.admin_provision_key(&m),
///     world.admin_provision_key(&m),
/// );
/// # let _ = (platform_a, platform_b);
/// ```
#[derive(Clone)]
pub struct TeeWorld {
    secret: SecretKey,
    authority: AttestationAuthority,
    /// Modelled per-ecall cost (ns) stamped onto every platform this
    /// world manufactures from now on; shared across clones.
    ecall_cost_ns: Arc<AtomicU64>,
}

impl std::fmt::Debug for TeeWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TeeWorld(<manufacturer secret redacted>)")
    }
}

impl Default for TeeWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl TeeWorld {
    /// Creates a world with a random manufacturer secret.
    pub fn new() -> Self {
        TeeWorld {
            secret: SecretKey::generate(),
            authority: AttestationAuthority::new(),
            ecall_cost_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a reproducible world for tests and simulations.
    pub fn new_deterministic(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ WORLD_SEED_SALT);
        TeeWorld {
            secret: SecretKey::generate_with(&mut rng),
            authority: AttestationAuthority::new_deterministic(seed),
            ecall_cost_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the modelled enclave-transition cost stamped onto every
    /// platform this world manufactures from here on; see
    /// [`TeePlatform::set_ecall_cost`]. Zero (the default) keeps
    /// ecalls free.
    pub fn set_ecall_cost(&self, cost: Duration) {
        let ns = u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX);
        self.ecall_cost_ns.store(ns, Ordering::Relaxed);
    }

    /// Manufactures a platform enrolled with this world's attestation
    /// authority.
    pub fn platform(&self, id: u64) -> TeePlatform {
        let platform = TeePlatform::new_world_member(id, self.secret.clone());
        platform.set_ecall_cost(self.ecall_cost());
        self.authority.enroll(&platform);
        platform
    }

    /// Manufactures a *deterministic* platform (root secret derived
    /// from `id`), enrolled with the authority.
    pub fn platform_deterministic(&self, id: u64) -> TeePlatform {
        let platform = TeePlatform::new_world_member_deterministic(id, self.secret.clone());
        platform.set_ecall_cost(self.ecall_cost());
        self.authority.enroll(&platform);
        platform
    }

    fn ecall_cost(&self) -> Duration {
        Duration::from_nanos(self.ecall_cost_ns.load(Ordering::Relaxed))
    }

    /// The attestation authority of this world.
    pub fn authority(&self) -> &AttestationAuthority {
        &self.authority
    }

    /// The provisioning key a trusted admin shares with enclaves running
    /// the program identified by `measurement` — models the admin's
    /// RA-DH channel endpoint.
    pub fn admin_provision_key(&self, measurement: &Measurement) -> SecretKey {
        provision_key_from(&self.secret, measurement)
    }
}

pub(crate) fn provision_key_from(world_secret: &SecretKey, m: &Measurement) -> SecretKey {
    hkdf::derive_key(world_secret, b"lcm-tee.provision", m.as_bytes())
}

pub(crate) fn migration_key_from(world_secret: &SecretKey, m: &Measurement) -> SecretKey {
    hkdf::derive_key(world_secret, b"lcm-tee.migration", m.as_bytes())
}

/// Arbitrary salt keeping deterministic world seeds disjoint from other
/// seeded RNG streams in the workspace.
const WORLD_SEED_SALT: u64 = 0x3d0d_5eed_cafe_f00d;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::TeeServices;

    fn services_for(world: &TeeWorld, platform_id: u64, m: Measurement) -> TeeServices {
        let platform = world.platform_deterministic(platform_id);
        TeeServices {
            platform: platform.inner.clone(),
            measurement: m,
            rng_seed: 0,
        }
    }

    #[test]
    fn migration_key_shared_across_platforms_same_program() {
        let world = TeeWorld::new_deterministic(1);
        let m = Measurement::of_program("lcm", "1");
        let a = services_for(&world, 1, m).migration_key().unwrap();
        let b = services_for(&world, 2, m).migration_key().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn migration_key_differs_across_programs() {
        let world = TeeWorld::new_deterministic(1);
        let m1 = Measurement::of_program("lcm", "1");
        let m2 = Measurement::of_program("lcm", "2");
        let a = services_for(&world, 1, m1).migration_key().unwrap();
        let b = services_for(&world, 1, m2).migration_key().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn migration_key_differs_across_worlds() {
        let m = Measurement::of_program("lcm", "1");
        let a = services_for(&TeeWorld::new_deterministic(1), 1, m)
            .migration_key()
            .unwrap();
        let b = services_for(&TeeWorld::new_deterministic(2), 1, m)
            .migration_key()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn provision_key_matches_admin_side() {
        let world = TeeWorld::new_deterministic(3);
        let m = Measurement::of_program("lcm", "1");
        let enclave_side = services_for(&world, 1, m).provision_key().unwrap();
        assert_eq!(enclave_side, world.admin_provision_key(&m));
    }

    #[test]
    fn non_world_platform_has_no_channel_keys() {
        let platform = TeePlatform::new_deterministic(5);
        let services = TeeServices {
            platform: platform.inner.clone(),
            measurement: Measurement::of_program("lcm", "1"),
            rng_seed: 0,
        };
        assert!(services.migration_key().is_none());
        assert!(services.provision_key().is_none());
    }

    #[test]
    fn manufactured_platforms_inherit_the_world_ecall_cost() {
        let world = TeeWorld::new_deterministic(6);
        let before = world.platform(1);
        assert_eq!(before.ecall_cost(), Duration::ZERO);
        world.set_ecall_cost(Duration::from_micros(80));
        assert_eq!(
            world.platform(2).ecall_cost(),
            Duration::from_micros(80),
            "platforms manufactured after the knob carry it"
        );
        assert_eq!(
            before.ecall_cost(),
            Duration::ZERO,
            "already-manufactured platforms keep their own setting"
        );
    }

    #[test]
    fn world_platforms_are_attestable() {
        let world = TeeWorld::new_deterministic(4);
        let platform = world.platform(1);
        // Enrollment happened: the group secret is installed.
        assert!(platform.inner.group_secret.lock().is_some());
    }
}
