//! Software simulator of an SGX-like trusted execution environment.
//!
//! The LCM paper (Brandenburger et al., DSN 2017) runs its trusted
//! execution context *T* inside an Intel SGX enclave. This crate is the
//! substitute substrate: a deterministic, in-process TEE simulator that
//! exposes exactly the abstractions the paper's system model (§2.2)
//! requires of a TEE, so the protocol layer above cannot tell the
//! difference:
//!
//! * **Isolated execution contexts with volatile protected memory** —
//!   [`enclave::Enclave`] hosts an [`enclave::EnclaveProgram`]; stopping
//!   or restarting the enclave destroys the program state (a new *epoch*
//!   begins with a freshly booted program instance). The untrusted host
//!   can start, stop, restart, and multiplex any number of instances —
//!   exactly the power the paper gives a malicious server.
//! * **Program-specific sealing keys** — [`platform::TeeServices::sealing_key`]
//!   implements `get-key(T, P)`: a key deterministic in (platform root
//!   secret, program measurement), so a re-started enclave running the
//!   same program on the same platform recovers the same key, while a
//!   different program or different platform gets an unrelated key.
//! * **Remote attestation** — [`attestation`] models the SGX flow:
//!   an enclave produces a *report* bound to its measurement and
//!   caller-chosen user data; the platform's quoting enclave turns it
//!   into a *quote* signed under an EPID-style group secret; verifiers
//!   check the quote against an [`attestation::AttestationAuthority`]
//!   without learning which platform signed.
//! * **Trusted monotonic counters** — [`tmc::Tmc`] emulates the Intel
//!   ME-backed counters the paper benchmarks against (§6.5), including
//!   their dominant property: a large per-increment latency.
//! * **EPC paging cost model** — [`epc`] reproduces the enclave-page-
//!   cache effects measured in §6.2 (limited 128 MB EPC, paging penalty
//!   once the enclave heap exceeds it, `std::map` memory overhead).
//!
//! What is simulated vs. real: all cryptography (sealing, report MACs,
//! quote signatures) is real and enforced — tampering is detected, keys
//! derived for the wrong measurement fail to unseal. The *hardware*
//! isolation boundary is simulated by Rust ownership: host code can only
//! reach enclave state through [`enclave::Enclave::ecall`]. Group
//! signatures (EPID) are simulated with a shared-secret MAC; see
//! [`attestation`] for the exact trust model of the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod enclave;
pub mod epc;
pub mod measurement;
pub mod platform;
pub mod tmc;
pub mod world;

mod error;

pub use error::TeeError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TeeError>;
