//! Remote attestation: reports, quotes, and the attestation authority.
//!
//! Models the SGX attestation pipeline (paper §5.1.2):
//!
//! 1. A verifier sends a challenge nonce to the enclave.
//! 2. The enclave produces a [`Report`] over its measurement and user
//!    data (which embeds the nonce), MACed with the platform's report
//!    key ([`crate::platform::TeeServices::report`]).
//! 3. The platform's [`QuotingEnclave`] verifies the report MAC locally
//!    and signs the report under its EPID group-member secret, yielding
//!    a [`Quote`].
//! 4. The verifier checks the quote against the
//!    [`AttestationAuthority`]'s group, and that measurement and nonce
//!    match expectations.
//!
//! **Simulation note.** Real EPID is an anonymous group *signature*
//! scheme. With only symmetric primitives in this workspace, the group
//! signature is simulated by an HMAC under a group secret shared between
//! all member platforms and the verifier. This preserves the two
//! properties the LCM bootstrap relies on — (a) only genuine platforms
//! can produce valid quotes, (b) quotes do not identify the platform —
//! under the assumption that verifiers do not forge quotes against
//! themselves, which is harmless here because in LCM the verifier is the
//! trusted admin.

use std::fmt;

use lcm_crypto::hmac::hmac_sha256;
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};

use crate::measurement::Measurement;
use crate::platform::TeePlatform;
use crate::{Result, TeeError};

/// A local attestation report produced inside an enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub measurement: Measurement,
    /// Caller-chosen data bound into the report (challenge nonce, key
    /// exchange material, …).
    pub user_data: Digest,
    /// MAC under the platform's report key; verified by the local
    /// quoting enclave.
    pub(crate) mac: Digest,
}

impl Report {
    /// Serializes the report for transport across the host boundary
    /// (96 bytes: measurement ‖ user data ‖ MAC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(self.measurement.as_bytes());
        out.extend_from_slice(self.user_data.as_bytes());
        out.extend_from_slice(self.mac.as_bytes());
        out
    }

    /// Deserializes a report from [`Report::to_bytes`] form.
    ///
    /// Returns `None` when `bytes` has the wrong length. A report with
    /// forged contents deserializes fine but fails MAC verification at
    /// the quoting enclave.
    pub fn from_bytes(bytes: &[u8]) -> Option<Report> {
        if bytes.len() != 96 {
            return None;
        }
        let field = |i: usize| {
            let mut arr = [0u8; 32];
            arr.copy_from_slice(&bytes[i * 32..(i + 1) * 32]);
            Digest(arr)
        };
        Some(Report {
            measurement: Measurement::from_digest(field(0)),
            user_data: field(1),
            mac: field(2),
        })
    }
}

/// A remotely verifiable quote: a report signed under the EPID-style
/// group secret.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The attested measurement.
    pub measurement: Measurement,
    /// The user data carried over from the report.
    pub user_data: Digest,
    /// Group signature (simulated; see module docs).
    signature: Digest,
}

fn quote_signature(
    group_secret: &SecretKey,
    measurement: &Measurement,
    user_data: &Digest,
) -> Digest {
    let mut buf = Vec::with_capacity(96);
    buf.extend_from_slice(b"lcm-tee.quote");
    buf.extend_from_slice(measurement.as_bytes());
    buf.extend_from_slice(user_data.as_bytes());
    hmac_sha256(group_secret.as_bytes(), &buf)
}

/// The quoting enclave of one platform.
///
/// Verifies locally-produced reports and converts them into [`Quote`]s.
#[derive(Clone)]
pub struct QuotingEnclave {
    platform: TeePlatform,
}

impl fmt::Debug for QuotingEnclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuotingEnclave")
            .field("platform", &self.platform.id())
            .finish()
    }
}

impl QuotingEnclave {
    /// Creates the quoting enclave for `platform`.
    pub fn new(platform: &TeePlatform) -> Self {
        QuotingEnclave {
            platform: platform.clone(),
        }
    }

    /// Verifies `report` was produced on this platform and signs it into
    /// a [`Quote`].
    ///
    /// # Errors
    ///
    /// * [`TeeError::AttestationFailed`] if the report MAC is invalid
    ///   (produced elsewhere or tampered with), or if the platform has
    ///   not joined an attestation authority.
    pub fn quote(&self, report: &Report) -> Result<Quote> {
        let expected = self
            .platform
            .inner
            .mac_report(&report.measurement, &report.user_data);
        if expected != report.mac {
            return Err(TeeError::AttestationFailed("report MAC invalid"));
        }
        let guard = self.platform.inner.group_secret.lock();
        let group_secret = guard
            .as_ref()
            .ok_or(TeeError::AttestationFailed("platform not in EPID group"))?;
        Ok(Quote {
            measurement: report.measurement,
            user_data: report.user_data,
            signature: quote_signature(group_secret, &report.measurement, &report.user_data),
        })
    }
}

/// The EPID-style attestation authority (Intel's role).
///
/// Enrolls platforms into a signature group and hands verifiers the
/// material needed to check quotes.
///
/// # Example
///
/// ```
/// use lcm_tee::attestation::AttestationAuthority;
/// use lcm_tee::platform::TeePlatform;
///
/// let authority = AttestationAuthority::new_deterministic(42);
/// let platform = TeePlatform::new_deterministic(1);
/// authority.enroll(&platform);
/// let verifier = authority.verifier();
/// # let _ = verifier;
/// ```
#[derive(Clone)]
pub struct AttestationAuthority {
    group_secret: SecretKey,
}

impl fmt::Debug for AttestationAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AttestationAuthority(<group redacted>)")
    }
}

impl Default for AttestationAuthority {
    fn default() -> Self {
        Self::new()
    }
}

impl AttestationAuthority {
    /// Creates an authority with a random group secret.
    pub fn new() -> Self {
        AttestationAuthority {
            group_secret: SecretKey::generate(),
        }
    }

    /// Creates an authority with a seed-derived group secret for
    /// reproducible tests.
    pub fn new_deterministic(seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00a7_7e57);
        AttestationAuthority {
            group_secret: SecretKey::generate_with(&mut rng),
        }
    }

    /// Enrolls `platform` into the signature group, enabling its quoting
    /// enclave.
    pub fn enroll(&self, platform: &TeePlatform) {
        *platform.inner.group_secret.lock() = Some(self.group_secret.clone());
    }

    /// Produces a verifier handle for relying parties.
    pub fn verifier(&self) -> QuoteVerifier {
        QuoteVerifier {
            group_secret: self.group_secret.clone(),
        }
    }
}

/// Relying-party side of attestation: checks quotes against a group.
#[derive(Clone)]
pub struct QuoteVerifier {
    group_secret: SecretKey,
}

impl fmt::Debug for QuoteVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("QuoteVerifier(<group redacted>)")
    }
}

impl QuoteVerifier {
    /// Verifies that `quote` was produced by a genuine group platform,
    /// attests `expected` program code, and carries `expected_user_data`
    /// (the challenge binding).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::AttestationFailed`] describing the first
    /// check that failed.
    pub fn verify(
        &self,
        quote: &Quote,
        expected: &Measurement,
        expected_user_data: &Digest,
    ) -> Result<()> {
        let sig = quote_signature(&self.group_secret, &quote.measurement, &quote.user_data);
        if sig != quote.signature {
            return Err(TeeError::AttestationFailed("group signature invalid"));
        }
        if &quote.measurement != expected {
            return Err(TeeError::AttestationFailed("unexpected measurement"));
        }
        if &quote.user_data != expected_user_data {
            return Err(TeeError::AttestationFailed("challenge mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::{Enclave, EnclaveProgram};
    use crate::platform::TeeServices;
    use lcm_crypto::sha256;

    struct App {
        services: TeeServices,
    }

    impl EnclaveProgram for App {
        fn measurement() -> Measurement {
            Measurement::of_program("attested-app", "1")
        }
        fn boot(services: TeeServices) -> Self {
            App { services }
        }
        fn ecall(&mut self, input: &[u8]) -> Vec<u8> {
            // Treat input as a challenge; return a serialized report.
            self.services.report(sha256::digest(input)).to_bytes()
        }
    }

    fn setup() -> (AttestationAuthority, TeePlatform, QuotingEnclave) {
        let authority = AttestationAuthority::new_deterministic(7);
        let platform = TeePlatform::new_deterministic(1);
        authority.enroll(&platform);
        let qe = QuotingEnclave::new(&platform);
        (authority, platform, qe)
    }

    fn make_report(platform: &TeePlatform, challenge: &[u8]) -> Report {
        let mut enclave = Enclave::<App>::create(platform);
        enclave.start().unwrap();
        enclave.ecall(challenge).unwrap();
        // Build the report through services directly for structured access.
        let services = TeeServices {
            platform: platform.inner.clone(),
            measurement: App::measurement(),
            rng_seed: 0,
        };
        services.report(sha256::digest(challenge))
    }

    #[test]
    fn full_attestation_roundtrip() {
        let (authority, platform, qe) = setup();
        let report = make_report(&platform, b"nonce-123");
        let quote = qe.quote(&report).unwrap();
        authority
            .verifier()
            .verify(&quote, &App::measurement(), &sha256::digest(b"nonce-123"))
            .unwrap();
    }

    #[test]
    fn quote_rejected_for_wrong_measurement() {
        let (authority, platform, qe) = setup();
        let report = make_report(&platform, b"nonce");
        let quote = qe.quote(&report).unwrap();
        let wrong = Measurement::of_program("evil-app", "1");
        assert!(matches!(
            authority
                .verifier()
                .verify(&quote, &wrong, &sha256::digest(b"nonce")),
            Err(TeeError::AttestationFailed("unexpected measurement"))
        ));
    }

    #[test]
    fn quote_rejected_for_wrong_challenge() {
        let (authority, platform, qe) = setup();
        let report = make_report(&platform, b"nonce");
        let quote = qe.quote(&report).unwrap();
        assert!(matches!(
            authority
                .verifier()
                .verify(&quote, &App::measurement(), &sha256::digest(b"other")),
            Err(TeeError::AttestationFailed("challenge mismatch"))
        ));
    }

    #[test]
    fn tampered_report_rejected_by_quoting_enclave() {
        let (_authority, platform, qe) = setup();
        let mut report = make_report(&platform, b"nonce");
        report.user_data = sha256::digest(b"forged");
        assert!(matches!(
            qe.quote(&report),
            Err(TeeError::AttestationFailed("report MAC invalid"))
        ));
    }

    #[test]
    fn report_from_other_platform_rejected() {
        let (_authority, _platform, qe) = setup();
        let other = TeePlatform::new_deterministic(99);
        let report = make_report(&other, b"nonce");
        assert!(qe.quote(&report).is_err());
    }

    #[test]
    fn unenrolled_platform_cannot_quote() {
        let platform = TeePlatform::new_deterministic(3);
        let qe = QuotingEnclave::new(&platform);
        let report = make_report(&platform, b"nonce");
        assert!(matches!(
            qe.quote(&report),
            Err(TeeError::AttestationFailed("platform not in EPID group"))
        ));
    }

    #[test]
    fn quote_from_foreign_authority_rejected() {
        let (_a1, platform, qe) = setup();
        let report = make_report(&platform, b"nonce");
        let quote = qe.quote(&report).unwrap();
        let other_authority = AttestationAuthority::new_deterministic(1234);
        assert!(other_authority
            .verifier()
            .verify(&quote, &App::measurement(), &sha256::digest(b"nonce"))
            .is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let (authority, platform, qe) = setup();
        let report = make_report(&platform, b"nonce");
        let mut quote = qe.quote(&report).unwrap();
        quote.signature = sha256::digest(b"forged");
        assert!(matches!(
            authority
                .verifier()
                .verify(&quote, &App::measurement(), &sha256::digest(b"nonce")),
            Err(TeeError::AttestationFailed("group signature invalid"))
        ));
    }

    #[test]
    fn quotes_are_platform_anonymous() {
        // Two enrolled platforms produce byte-identical quotes for the
        // same report contents: the verifier cannot tell them apart.
        let authority = AttestationAuthority::new_deterministic(5);
        let p1 = TeePlatform::new_deterministic(1);
        let p2 = TeePlatform::new_deterministic(2);
        authority.enroll(&p1);
        authority.enroll(&p2);
        let q1 = QuotingEnclave::new(&p1)
            .quote(&make_report(&p1, b"n"))
            .unwrap();
        let q2 = QuotingEnclave::new(&p2)
            .quote(&make_report(&p2, b"n"))
            .unwrap();
        assert_eq!(q1, q2);
    }
}
