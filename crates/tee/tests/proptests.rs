//! Property tests for the TEE simulator's security-relevant
//! invariants.

use lcm_crypto::sha256;
use lcm_tee::attestation::QuotingEnclave;
use lcm_tee::enclave::{Enclave, EnclaveProgram};
use lcm_tee::measurement::Measurement;
use lcm_tee::platform::{TeePlatform, TeeServices};
use lcm_tee::world::TeeWorld;
use proptest::prelude::*;

struct Probe;
impl EnclaveProgram for Probe {
    fn measurement() -> Measurement {
        Measurement::of_program("probe", "1")
    }
    fn boot(_s: TeeServices) -> Self {
        Probe
    }
    fn ecall(&mut self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }
}

proptest! {
    // Pinned case count so CI time is bounded; the runner's seed is
    // derived deterministically from each test's name.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sealing keys separate cleanly: equal iff both platform and
    /// program agree.
    #[test]
    fn sealing_key_separation(
        p1 in 0u64..50, p2 in 0u64..50,
        n1 in "[a-z]{1,8}", n2 in "[a-z]{1,8}",
    ) {
        let world = TeeWorld::new_deterministic(1);
        let m1 = Measurement::of_program(&n1, "1");
        let m2 = Measurement::of_program(&n2, "1");
        let s1 = TeeServices::for_tests(world.platform_deterministic(p1), m1, 0);
        let s2 = TeeServices::for_tests(world.platform_deterministic(p2), m2, 0);
        let same = p1 == p2 && n1 == n2;
        prop_assert_eq!(s1.sealing_key() == s2.sealing_key(), same);
    }

    /// Measurements are injective over (name, version) pairs in
    /// practice.
    #[test]
    fn measurement_injective(
        a in ("[a-z]{1,12}", "[0-9.]{1,6}"),
        b in ("[a-z]{1,12}", "[0-9.]{1,6}"),
    ) {
        let ma = Measurement::of_program(&a.0, &a.1);
        let mb = Measurement::of_program(&b.0, &b.1);
        prop_assert_eq!(ma == mb, a == b);
    }

    /// Quote verification rejects every single-byte mutation of the
    /// serialized report.
    #[test]
    fn mutated_reports_never_quote(byte in 0usize..96, flip in 1u8..=255) {
        let world = TeeWorld::new_deterministic(2);
        let platform = world.platform_deterministic(1);
        let services =
            TeeServices::for_tests(platform.clone(), Measurement::of_program("probe", "1"), 0);
        let report = services.report(sha256::digest(b"challenge"));
        let mut bytes = report.to_bytes();
        bytes[byte] ^= flip;
        let mutated = lcm_tee::attestation::Report::from_bytes(&bytes).unwrap();
        let qe = QuotingEnclave::new(&platform);
        prop_assert!(qe.quote(&mutated).is_err());
    }

    /// Enclave restarts always produce fresh program state, whatever
    /// the restart schedule.
    #[test]
    fn restarts_always_reset(restarts in proptest::collection::vec(any::<bool>(), 1..20)) {
        let world = TeeWorld::new_deterministic(3);
        let platform = world.platform_deterministic(1);
        let mut enclave = Enclave::<Probe>::create(&platform);
        enclave.start().unwrap();
        let mut expected_epoch = 1;
        for restart in restarts {
            if restart {
                enclave.restart().unwrap();
                expected_epoch += 1;
            } else {
                enclave.ecall(b"work").unwrap();
            }
            prop_assert_eq!(enclave.epoch(), expected_epoch);
            prop_assert!(enclave.is_running());
        }
    }

    /// Standalone platforms never share sealing keys with world
    /// platforms, even at equal ids.
    #[test]
    fn standalone_platforms_are_isolated(id in 0u64..50) {
        let world = TeeWorld::new_deterministic(4);
        let m = Measurement::of_program("probe", "1");
        let world_key =
            TeeServices::for_tests(world.platform_deterministic(id), m, 0).sealing_key();
        let standalone_key =
            TeeServices::for_tests(TeePlatform::new_deterministic(id), m, 0).sealing_key();
        prop_assert_ne!(world_key, standalone_key);
    }
}
