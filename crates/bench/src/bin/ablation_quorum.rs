//! Ablation — stability quorum strength (paper §3.2.2: "one may use
//! different strengths of stability").
//!
//! Stability requires a quorum of clients to have *observed* an
//! operation. This ablation runs the real protocol stack with a group
//! of 6 registered clients of which only `m` are active, and reports
//! whether an active client's operation ever becomes stable: under
//! `Majority` it takes m ≥ 4 active clients, under `All` every client
//! must participate, and under `AtLeast(2)` two suffice. This is also
//! the mechanism behind fork detection: a forked-off partition that is
//! not a quorum can never stabilize (paper §4.5).
//!
//! Regenerate: `cargo run -p lcm-bench --bin ablation_quorum --release`

use std::sync::Arc;

use lcm_bench::{header, write_csv};
use lcm_core::admin::AdminHandle;
use lcm_core::server::LcmServer;
use lcm_core::stability::Quorum;
use lcm_core::types::ClientId;
use lcm_kvs::client::KvsClient;
use lcm_kvs::store::KvStore;
use lcm_storage::MemoryStorage;
use lcm_tee::world::TeeWorld;

const GROUP: u32 = 6;

/// Runs rounds with `active` of the 6 group clients; returns whether
/// any operation became stable within 6 rounds.
fn stabilizes(active: u32, quorum: Quorum) -> bool {
    let world = TeeWorld::new_deterministic(700 + active as u64);
    let platform = world.platform_deterministic(1);
    let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), 16);
    server.boot().unwrap();
    let ids: Vec<ClientId> = (1..=GROUP).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), quorum, 9);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<KvsClient> = ids
        .iter()
        .take(active as usize)
        .map(|&id| KvsClient::new(id, admin.client_key()))
        .collect();

    for _round in 0..6 {
        for c in clients.iter_mut() {
            let done = c.put(&mut server, b"k", b"v").unwrap();
            if done.stable.0 > 0 {
                return true;
            }
        }
    }
    false
}

fn main() {
    println!("Ablation: stability quorum strength, {GROUP}-client group (real stack)\n");
    header(&["active clients", "majority", "all", "at-least-2"]);
    let mut rows = Vec::new();
    for active in 1..=GROUP {
        let cell = |q: Quorum| {
            if stabilizes(active, q) {
                "stable"
            } else {
                "stuck"
            }
        };
        let (majority, all, atleast2) = (
            cell(Quorum::Majority),
            cell(Quorum::All),
            cell(Quorum::AtLeast(2)),
        );
        println!("| {active:>14} | {majority:>8} | {all:>6} | {atleast2:>10} |");
        rows.push(vec![
            active.to_string(),
            majority.to_string(),
            all.to_string(),
            atleast2.to_string(),
        ]);
    }
    write_csv(
        "ablation_quorum",
        &["active_clients", "majority", "all", "at_least_2"],
        &rows,
    );
    println!("\n(a forked-off partition smaller than the quorum can never make");
    println!(" progress on stability — the detection signal of §4.5; stronger");
    println!(" quorums detect smaller partitions but stall more easily)");
}
