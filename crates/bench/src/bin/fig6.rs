//! Figure 6 — throughput with different numbers of clients,
//! synchronous (fsync) disk writes.
//!
//! Paper setup: as Fig. 5 but with fsync enabled. Headline claims:
//! Native, SGX, LCM, SGX+TMC stay flat (fsync-bound); Redis and the
//! batched variants scale; SGX ≈ 0.98× Native; LCM ≈ 0.69× SGX
//! unbatched; LCM+batch = 0.72–9.87× SGX and 0.71–0.75× SGX+batch.
//!
//! Regenerate: `cargo run -p lcm-bench --bin fig6 --release`

use lcm_bench::{compare, series_csv};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{client_counts, run_figure5_or_6};
use lcm_sim::CostModel;

const LABEL_WIDTH: usize = 30;

fn main() {
    let model = CostModel::default();
    println!("Figure 6: throughput vs #clients, 100 B objects, SYNC (fsync) writes\n");

    let series = run_figure5_or_6(&model, true);
    series_csv("fig6", &series);
    print!("| {:<LABEL_WIDTH$} |", "series \\ clients");
    for n in client_counts() {
        print!(" {n:>8} |");
    }
    println!();
    print!("|{}|", "-".repeat(LABEL_WIDTH + 2));
    for _ in client_counts() {
        print!("{}|", "-".repeat(10));
    }
    println!();
    for s in &series {
        print!("| {:<LABEL_WIDTH$} |", s.label());
        for (_, x) in &s.rows {
            print!(" {x:>8.0} |");
        }
        println!();
    }
    println!("  (units: ops/sec)");

    let get = |kind: ServerKind, delta_log: bool| -> Vec<f64> {
        series
            .iter()
            .find(|s| s.kind == kind && s.delta_log == delta_log)
            .map(|s| s.rows.iter().map(|(_, x)| *x).collect())
            .unwrap()
    };
    let native = get(ServerKind::Native, false);
    let sgx = get(ServerKind::Sgx { batch: 1 }, false);
    let sgx_b = get(ServerKind::Sgx { batch: 16 }, false);
    let lcm = get(ServerKind::Lcm { batch: 1 }, false);
    let lcm_b = get(ServerKind::Lcm { batch: 16 }, false);
    let lcm_d = get(ServerKind::Lcm { batch: 16 }, true);
    let redis = get(ServerKind::RedisTls, false);

    let range = |num: &[f64], den: &[f64]| {
        let r: Vec<f64> = num.iter().zip(den).map(|(a, b)| a / b).collect();
        format!(
            "{:.2}x – {:.2}x",
            r.iter().cloned().fold(f64::INFINITY, f64::min),
            r.iter().cloned().fold(0.0f64, f64::max)
        )
    };
    let flatness = |xs: &[f64]| format!("{:.2}", xs.last().unwrap() / xs.first().unwrap());

    println!("\nPaper-vs-measured:");
    compare(
        "SGX / Native (fsync-bound)",
        "~0.98x",
        &range(&sgx, &native),
    );
    compare("LCM / SGX unbatched", "~0.69x", &range(&lcm, &sgx));
    compare(
        "LCM+batch / SGX unbatched",
        "0.72x – 9.87x",
        &range(&lcm_b, &sgx),
    );
    compare(
        "LCM+batch / SGX+batch",
        "0.71x – 0.75x",
        &range(&lcm_b, &sgx_b),
    );
    compare("Native flat (x32/x1)", "~1.0", &flatness(&native));
    compare("LCM unbatched flat (x32/x1)", "~1.0", &flatness(&lcm));
    compare("Redis scales (x32/x1)", ">> 1", &flatness(&redis));
    // The delta-log engine is not in the paper; even at the paper's
    // small 1000-record store the touched-key diff seals less than the
    // full state, buying a modest edge that widens with store size
    // (see bench_snapshot's delta cells for the large-store case).
    compare(
        "LCM+batch delta-log / full-seal (fsync)",
        "1.0x – 1.3x",
        &range(&lcm_d, &lcm_b),
    );
}
