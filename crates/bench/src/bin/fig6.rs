//! Figure 6 — throughput with different numbers of clients,
//! synchronous (fsync) disk writes.
//!
//! Paper setup: as Fig. 5 but with fsync enabled. Headline claims:
//! Native, SGX, LCM, SGX+TMC stay flat (fsync-bound); Redis and the
//! batched variants scale; SGX ≈ 0.98× Native; LCM ≈ 0.69× SGX
//! unbatched; LCM+batch = 0.72–9.87× SGX and 0.71–0.75× SGX+batch.
//!
//! Regenerate: `cargo run -p lcm-bench --bin fig6 --release`

use lcm_bench::{compare, series_csv};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{client_counts, run_figure5_or_6};
use lcm_sim::CostModel;

fn main() {
    let model = CostModel::default();
    println!("Figure 6: throughput vs #clients, 100 B objects, SYNC (fsync) writes\n");

    let series = run_figure5_or_6(&model, true);
    series_csv("fig6", &series);
    print!("| {:<18} |", "series \\ clients");
    for n in client_counts() {
        print!(" {n:>8} |");
    }
    println!();
    print!("|{}|", "-".repeat(20));
    for _ in client_counts() {
        print!("{}|", "-".repeat(10));
    }
    println!();
    for (kind, rows) in &series {
        print!("| {:<18} |", kind.label());
        for (_, x) in rows {
            print!(" {x:>8.0} |");
        }
        println!();
    }
    println!("  (units: ops/sec)");

    let get = |kind: ServerKind| -> Vec<f64> {
        series
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, rows)| rows.iter().map(|(_, x)| *x).collect())
            .unwrap()
    };
    let native = get(ServerKind::Native);
    let sgx = get(ServerKind::Sgx { batch: 1 });
    let sgx_b = get(ServerKind::Sgx { batch: 16 });
    let lcm = get(ServerKind::Lcm { batch: 1 });
    let lcm_b = get(ServerKind::Lcm { batch: 16 });
    let redis = get(ServerKind::RedisTls);

    let range = |num: &[f64], den: &[f64]| {
        let r: Vec<f64> = num.iter().zip(den).map(|(a, b)| a / b).collect();
        format!(
            "{:.2}x – {:.2}x",
            r.iter().cloned().fold(f64::INFINITY, f64::min),
            r.iter().cloned().fold(0.0f64, f64::max)
        )
    };
    let flatness = |xs: &[f64]| format!("{:.2}", xs.last().unwrap() / xs.first().unwrap());

    println!("\nPaper-vs-measured:");
    compare(
        "SGX / Native (fsync-bound)",
        "~0.98x",
        &range(&sgx, &native),
    );
    compare("LCM / SGX unbatched", "~0.69x", &range(&lcm, &sgx));
    compare(
        "LCM+batch / SGX unbatched",
        "0.72x – 9.87x",
        &range(&lcm_b, &sgx),
    );
    compare(
        "LCM+batch / SGX+batch",
        "0.71x – 0.75x",
        &range(&lcm_b, &sgx_b),
    );
    compare("Native flat (x32/x1)", "~1.0", &flatness(&native));
    compare("LCM unbatched flat (x32/x1)", "~1.0", &flatness(&lcm));
    compare("Redis scales (x32/x1)", ">> 1", &flatness(&redis));
}
