//! Figure 5 — throughput with different numbers of clients (async
//! writes).
//!
//! Paper setup: clients {1,2,4,8,16,32}, 1000 objects of 100 B, YCSB
//! workload A, async writes; seven series (SGX, SGX+batching, Native,
//! LCM, LCM+batching, Redis TLS, SGX+TMC). Headline claims: Redis and
//! Native scale almost linearly; SGX and LCM saturate around 8
//! clients; SGX = 0.42–0.78× Native; LCM = 0.67–0.95× SGX (with
//! batching 0.72–0.98×); TMC flat ≈ 12 ops/s.
//!
//! Regenerate: `cargo run -p lcm-bench --bin fig5 --release`

use lcm_bench::{compare, kops, series_csv};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{client_counts, run_figure5_or_6, FigureSeries};
use lcm_sim::CostModel;

fn main() {
    let model = CostModel::default();
    println!("Figure 5: throughput vs #clients, 100 B objects, async writes\n");

    let series = run_figure5_or_6(&model, false);
    print_series(&series);
    series_csv("fig5", &series);

    // Ratio analysis matching the paper's §6.4 text.
    let get = |kind: ServerKind, delta_log: bool| -> Vec<f64> {
        series
            .iter()
            .find(|s| s.kind == kind && s.delta_log == delta_log)
            .map(|s| s.rows.iter().map(|(_, x)| *x).collect())
            .unwrap()
    };
    let native = get(ServerKind::Native, false);
    let sgx = get(ServerKind::Sgx { batch: 1 }, false);
    let sgx_b = get(ServerKind::Sgx { batch: 16 }, false);
    let lcm = get(ServerKind::Lcm { batch: 1 }, false);
    let lcm_b = get(ServerKind::Lcm { batch: 16 }, false);
    let lcm_d = get(ServerKind::Lcm { batch: 16 }, true);
    let tmc = get(ServerKind::SgxTmc, false);

    let range = |num: &[f64], den: &[f64]| {
        let ratios: Vec<f64> = num.iter().zip(den).map(|(a, b)| a / b).collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        format!("{min:.2}x – {max:.2}x")
    };

    println!("\nPaper-vs-measured:");
    compare("SGX / Native", "0.42x – 0.78x", &range(&sgx, &native));
    compare("LCM / SGX", "0.67x – 0.95x", &range(&lcm, &sgx));
    compare(
        "LCM+batch / SGX+batch",
        "0.72x – 0.98x",
        &range(&lcm_b, &sgx_b),
    );
    compare(
        "SGX+TMC throughput (flat)",
        "~12 ops/s",
        &format!("{:.1} ops/s", tmc.iter().sum::<f64>() / tmc.len() as f64),
    );
    let sat = sgx[3] / sgx[5]; // 8 clients vs 32 clients
    compare(
        "SGX saturated by 8 clients (x8/x32)",
        "~1.0",
        &format!("{sat:.2}"),
    );
    let lin = native[5] / native[0];
    compare(
        "Native scaling 1→32 clients",
        "almost linear",
        &format!("{lin:.1}x"),
    );
    // The delta-log engine is not in the paper. Async writes never
    // block on the disk, but sealing is in-enclave CPU work either
    // way, and sealing the touched-key diff is cheaper than sealing
    // the full state even at the paper's 1000-record store.
    compare(
        "LCM+batch delta-log / full-seal (async)",
        "1.2x – 1.4x",
        &range(&lcm_d, &lcm_b),
    );
}

fn print_series(series: &[FigureSeries]) {
    print!("| {:<30} |", "series \\ clients");
    for n in client_counts() {
        print!(" {n:>8} |");
    }
    println!();
    print!("|{}|", "-".repeat(32));
    for _ in client_counts() {
        print!("{}|", "-".repeat(10));
    }
    println!();
    for s in series {
        print!("| {:<30} |", s.label());
        for (_, x) in &s.rows {
            print!(" {} |", kops(*x));
        }
        println!();
    }
    println!("  (units: kops/sec)");
}
