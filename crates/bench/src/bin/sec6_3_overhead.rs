//! §6.3 — LCM protocol message overhead.
//!
//! Paper claim: the LCM implementation adds **45 bytes** to an
//! operation invocation and **46 bytes** to a result, constant across
//! operation/result sizes. This harness measures the real wire
//! messages produced by this implementation.
//!
//! Our INVOKE matches the 45 bytes exactly. Our REPLY carries the full
//! Alg. 2 field list `[REPLY, t, h, r, q, hc]` (81 bytes); the paper's
//! 46 bytes implies their implementation elides part of the echoed
//! chain value — see EXPERIMENTS.md. Constancy, the property §6.3
//! establishes, holds for both.
//!
//! Regenerate: `cargo run -p lcm-bench --bin sec6_3_overhead --release`

use lcm_bench::{compare, header, write_csv};
use lcm_core::codec::WireCodec;
use lcm_core::types::{ChainValue, ClientId, SeqNo};
use lcm_core::wire::{InvokeMsg, ReplyMsg, INVOKE_OVERHEAD, REPLY_OVERHEAD};

fn main() {
    println!("Section 6.3: protocol message overhead (plaintext metadata)\n");
    header(&[
        "payload [B]",
        "INVOKE [B]",
        "invoke overhead",
        "REPLY [B]",
        "reply overhead",
    ]);

    let mut constant = true;
    let mut rows = Vec::new();
    for &size in &[0usize, 100, 500, 1000, 1500, 2000, 2500] {
        let invoke = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo(7),
            hc: ChainValue::GENESIS,
            retry: false,
            op: vec![0xab; size],
        };
        let reply = ReplyMsg {
            t: SeqNo(8),
            q: SeqNo(5),
            h: ChainValue::GENESIS,
            hc_echo: ChainValue::GENESIS,
            redirect: false,
            result: vec![0xcd; size],
        };
        let ib = invoke.to_bytes().len();
        let rb = reply.to_bytes().len();
        constant &= ib - size == INVOKE_OVERHEAD && rb - size == REPLY_OVERHEAD;
        println!(
            "| {size:>10} | {ib:>9} | {:>14} | {rb:>8} | {:>13} |",
            ib - size,
            rb - size
        );
        rows.push(vec![
            size.to_string(),
            ib.to_string(),
            (ib - size).to_string(),
            rb.to_string(),
            (rb - size).to_string(),
        ]);
    }
    write_csv(
        "sec6_3_overhead",
        &[
            "payload_B",
            "invoke_B",
            "invoke_overhead_B",
            "reply_B",
            "reply_overhead_B",
        ],
        &rows,
    );

    println!(
        "\nAEAD framing adds a further constant {} bytes per message",
        12 + 32
    );
    println!("(nonce + HMAC tag; the paper's AES-GCM adds 12 + 16).\n");

    println!("Paper-vs-measured:");
    compare(
        "invocation overhead",
        "45 B",
        &format!("{INVOKE_OVERHEAD} B"),
    );
    compare(
        "result overhead",
        "46 B",
        &format!("{REPLY_OVERHEAD} B (full Alg. 2 field list; see EXPERIMENTS.md)"),
    );
    compare(
        "overhead constant in payload size",
        "yes",
        if constant { "yes" } else { "NO" },
    );
}
