//! Extension — end-to-end latency profile per server variant.
//!
//! The paper reports only throughput; this binary adds the latency
//! side of the same simulated runs (mean / p50 / p99), which makes the
//! saturation behaviour of Fig. 5 visible from the other direction:
//! past the knee, added clients buy queueing delay, not throughput.
//!
//! Regenerate: `cargo run -p lcm-bench --bin latency --release`

use lcm_bench::write_csv;
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;

fn main() {
    let model = CostModel::default();
    println!("Latency profile (async writes, 100 B objects)\n");
    println!(
        "| {:<18} | {:>7} | {:>10} | {:>10} | {:>10} |",
        "series", "clients", "mean", "p50", "p99"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(20),
        "-".repeat(9),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12)
    );

    let mut rows = Vec::new();
    for kind in [
        ServerKind::Native,
        ServerKind::Sgx { batch: 1 },
        ServerKind::Lcm { batch: 1 },
        ServerKind::Lcm { batch: 16 },
    ] {
        for n in [1usize, 8, 32] {
            let m = run_scenario(&model, &Scenario::paper_default(kind, n));
            println!(
                "| {:<18} | {:>7} | {:>10.2?} | {:>10.2?} | {:>10.2?} |",
                kind.label(),
                n,
                m.mean_latency(),
                m.p50(),
                m.p99(),
            );
            rows.push(vec![
                kind.label().to_string(),
                n.to_string(),
                format!("{:.6}", m.mean_latency().as_secs_f64()),
                format!("{:.6}", m.p50().as_secs_f64()),
                format!("{:.6}", m.p99().as_secs_f64()),
            ]);
        }
    }
    write_csv(
        "latency",
        &["series", "clients", "mean_s", "p50_s", "p99_s"],
        &rows,
    );
    println!("\n(saturated variants trade throughput for queueing delay; the");
    println!(" network-bound native path keeps flat latency until its own knee)");
}
