//! Ablation — transport front-end driver threads × shard count.
//!
//! PR 3/4 parallelized stage 2 (N enclaves behind the router), but the
//! whole deployment was still fed by one thread: ingress collection,
//! lane driving, and reply delivery were a single serial loop. This
//! sweep quantifies the front-end lever: how many *driver threads*
//! pump the lanes, at 1/4/8 shards.
//!
//! Two parts:
//! 1. the calibrated simulator (`Scenario::frontend_threads`: at most
//!    F shard cycles overlap, plus the `CostModel::frontend_contention`
//!    surcharge on the per-op host share), and
//! 2. a **real-stack** sweep: the same sharded deployment behind
//!    `lcm_core::transport::Frontend` with driver threads {1, 2, 4},
//!    uniform closed-loop clients on their own threads, measured over
//!    a fixed wall-clock window against storage with a modelled
//!    per-store latency. The single-driver `process_all` loop is the
//!    baseline column.
//!
//! With one driver, the shard fan-out collapses back to a serial
//! store path (cycles cannot overlap); adding drivers restores the
//! PR 3 scaling — which is exactly what the simulator's driver
//! semaphore predicts.
//!
//! Regenerate: `cargo run -p lcm-bench --bin ablation_frontend --release`
//! (set `CRITERION_QUICK=1` for a fast smoke run)

use std::time::Duration;

use lcm_bench::shardbench::{measure_for, measure_frontend_for, ShardRun};
use lcm_bench::{header, kops, write_csv};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;

const SHARD_SWEEP: [u32; 3] = [1, 4, 8];
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
const BATCH: usize = 4;
/// Modelled write+fsync latency per store call in the real sweep.
const STORE_DELAY: Duration = Duration::from_millis(2);
const CLIENTS: u32 = 32;

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

fn main() {
    let model = CostModel::default();
    println!(
        "Ablation: front-end driver threads, LCM batch {BATCH}, {CLIENTS} clients (simulator)\n"
    );
    header(&["shards", "drivers", "fsync [kops/s]", "vs 1 driver"]);
    let mut sim_rows = Vec::new();
    for &shards in &SHARD_SWEEP {
        let mut base = 0.0;
        for &threads in &THREAD_SWEEP {
            let mut scenario =
                Scenario::paper_default(ServerKind::Lcm { batch: BATCH }, CLIENTS as usize);
            scenario.fsync = true;
            scenario.shards = shards as usize;
            scenario.frontend_threads = threads;
            let x = run_scenario(&model, &scenario).throughput();
            if threads == 1 {
                base = x;
            }
            println!(
                "| {shards:>6} | {threads:>7} | {} | {:>10.2}x |",
                kops(x),
                x / base
            );
            sim_rows.push(vec![
                shards.to_string(),
                threads.to_string(),
                format!("{x:.1}"),
            ]);
        }
    }
    write_csv(
        "ablation_frontend_sim",
        &["shards", "drivers", "fsync_ops_per_s"],
        &sim_rows,
    );
    println!("\n(one driver serializes every shard's store path; drivers restore the");
    println!(" fan-out, and past `shards` threads only the contention term is left)");

    // Part 2: the real stack under wall-clock storage cost.
    let window = if quick() {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(900)
    };
    println!("\nReal stack: {CLIENTS} clients, {window:?} window/config, {STORE_DELAY:?}/store\n");
    header(&[
        "shards",
        "single-driver [ops/s]",
        "fe x1 [ops/s]",
        "fe x2 [ops/s]",
        "fe x4 [ops/s]",
    ]);
    let mut real_rows = Vec::new();
    for &shards in &SHARD_SWEEP {
        let cfg = ShardRun {
            shards,
            batch: BATCH,
            pipelined: false,
            clients: CLIENTS,
            rounds: 0,
            store_delay: STORE_DELAY,
            hot_clients: 0,
        };
        let single = measure_for(&cfg, window);
        let fe: Vec<f64> = THREAD_SWEEP
            .iter()
            .map(|&threads| measure_frontend_for(&cfg, threads, window))
            .collect();
        println!(
            "| {shards:>6} | {single:>21.0} | {:>13.0} | {:>13.0} | {:>13.0} |",
            fe[0], fe[1], fe[2]
        );
        real_rows.push(vec![
            shards.to_string(),
            format!("{single:.1}"),
            format!("{:.1}", fe[0]),
            format!("{:.1}", fe[1]),
            format!("{:.1}", fe[2]),
        ]);
    }
    write_csv(
        "ablation_frontend_real",
        &[
            "shards",
            "single_driver_ops_per_s",
            "fe1_ops_per_s",
            "fe2_ops_per_s",
            "fe4_ops_per_s",
        ],
        &real_rows,
    );
    println!("\n(driver threads are the vehicles of the store round-trips: with one");
    println!(" driver the modelled device latencies serialize again, shards or not)");
}
