//! Machine-readable performance snapshot: `BENCH_pipeline.json`.
//!
//! Runs the pipeline + sharding benches briefly on the real stack and
//! emits ops/s per (mode × shard count) as JSON, so the performance
//! trajectory of the repository is tracked from one committed artifact
//! onward. CI regenerates it in the figures job; regenerate locally
//! with
//!
//! ```text
//! cargo run -p lcm-bench --bin bench_snapshot --release
//! ```
//!
//! Two workloads:
//!
//! * **Uniform** (`sync` / `pipelined` × shards {1, 4, 8}) — every
//!   client PUTs its own key, keys spread by route hash; rounds of
//!   submit-all/process-all on the single-driver path. Tracks the
//!   PR 2/3 levers (async writes, shard fan-out); the
//!   `shard_scaleout_8v4` signal additionally gates that 8 shards
//!   beat 4 in both modes (half the persist cycles per round at this
//!   client count).
//! * **Skewed** (`*-hot` vs `*-fe` vs `*-adm`, 8 shards) — half the
//!   clients hammer one hot shard, measured over a fixed wall-clock
//!   window. `*-hot` drives the identical deployment single-threaded
//!   (every round barriers on the hot shard's multi-batch backlog);
//!   `*-fe` runs the concurrent transport `Frontend` (per-shard driver
//!   threads, per-client closed loops on their own threads), which
//!   keeps the cold shards serving while the hot shard grinds. The
//!   tracked signal is `frontend_speedup_8shards`.
//!
//!   `*-reshard` runs the identical skewed deployment after the
//!   heat-aware rebalancer migrated the hot shard's slices across the
//!   cold shards live (epoch-versioned routing; clients chase typed
//!   redirects). Where `*-fe` and `*-adm` mitigate the hot-shard
//!   collapse in front of the enclaves, this removes it at the
//!   router: the gated `reshard_recovery_8shards` ratio is
//!   `*-reshard / *-hot`.
//!
//!   `*-adm` repeats the `*-fe` workload with the multi-tenant
//!   admission policy installed: the hot hammerers form a rate-capped
//!   low-weight tenant, everyone else an unmetered tenant. These cells
//!   additionally record the well-behaved tenant's p50/p99/p999 from
//!   the front door's per-tenant histograms — the p99 is the latency
//!   SLO `bench_gate` enforces (hot-tenant pressure must not regress
//!   the metered tenant's tail).
//!
//! The file lands in `$LCM_OUT_DIR` when set, else the working
//! directory. Numbers are wall-clock and machine-dependent — the
//! tracked signals are the *ratios* between configurations, which are
//! hardware-stable because the store cost is modelled
//! (`DelayedStorage`).

use std::time::Duration;

use lcm_bench::gate::{DELTA_LARGE_MODE, DELTA_SMALL_MODE};
use lcm_bench::shardbench::{
    measure, measure_delta, measure_for, measure_frontend_admitted, measure_frontend_for,
    measure_replicated_reads, measure_replicated_write, measure_resharded, DeltaRun, ReplicaRun,
    ShardRun, COLD_TENANT, HOT_TENANT,
};

/// 96 clients over batch-16 lanes makes shard fan-out visible at the
/// batch granularity: 4 shards carry 24 route-hashed keys each (two
/// batch cycles per round), 8 shards carry 11–13 (one cycle) — so the
/// 8-shard deployment pays half the persist cycles per round and the
/// `shard_scaleout_8v4` signal tracks a real integer-factor lever,
/// not hash luck.
const CLIENTS: u32 = 96;
const BATCH: usize = 16;
/// Large enough that persistence — the thing sharding parallelizes —
/// is the clear bottleneck in both modes (well above the per-op
/// execution cost even on a single-core runner), keeping the recorded
/// ratios stable across runner hardware.
const STORE_DELAY: Duration = Duration::from_millis(2);
const SHARDS: [u32; 3] = [1, 4, 8];

/// Skewed-workload parameters: half the clients on one hot shard, a
/// store slow enough that the hot shard's backlog dominates a
/// single-driver round.
const HOT_CLIENTS: u32 = 48;
const HOT_SHARDS: u32 = 8;
const HOT_STORE_DELAY: Duration = Duration::from_millis(4);

/// Replicated-group parameters: one shard group at 1 (control) and
/// `REPLICAS` members. The write cells track the quorum's cost (each
/// batch pays `replicas` persisted copies); the read cells track
/// follower-read scale-out (`REP_READERS` threads hammering the
/// lock-per-member read port, legs pinned round-robin).
const REPLICAS: u32 = 3;
const REP_CLIENTS: u32 = 32;
const REP_READERS: u32 = 6;
/// Modelled enclave-transition cost per member ecall. Like
/// `STORE_DELAY` for the disk, this makes member *occupancy* — not the
/// runner's core count — the read bottleneck, so the follower-read
/// scale-out ratio is hardware-stable: at 1 member every read leg
/// serializes on the sole enclave, at `REPLICAS` members the pinned
/// legs overlap their service time.
const ECALL_COST: Duration = Duration::from_micros(80);

/// Delta-log engine cells: the same closed-loop write workload over a
/// tiny and a 10⁶-record resident store. Per group commit the engine
/// seals only the batch's diff, so `delta-1M / delta-small` must stay
/// near 1 — `bench_gate` enforces the 0.5 floor on the fresh ratio.
const DELTA_SMALL: u32 = 1_000;
const DELTA_LARGE: u32 = 1_000_000;

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

fn main() {
    let rounds = if quick() { 2 } else { 8 };
    let window = if quick() {
        Duration::from_millis(400)
    } else {
        Duration::from_millis(1200)
    };

    // (mode, shards, ops/s, optional (p50, p99, p999) in µs for the
    // tracked tenant).
    type Lat = (f64, f64, f64);
    let mut results: Vec<(String, u32, f64, Option<Lat>)> = Vec::new();
    for pipelined in [false, true] {
        for &shards in &SHARDS {
            let ops = measure(&ShardRun {
                shards,
                batch: BATCH,
                pipelined,
                clients: CLIENTS,
                rounds,
                store_delay: STORE_DELAY,
                hot_clients: 0,
            });
            let mode = if pipelined { "pipelined" } else { "sync" };
            println!("{mode:>13} x {shards} shard(s): {ops:>10.0} ops/s");
            results.push((mode.to_string(), shards, ops, None));
        }
    }

    // Skewed workload: the same deployment and key set, single-driver
    // vs concurrent front-end vs admission-controlled front-end, over
    // the same wall-clock window.
    for pipelined in [false, true] {
        let cfg = ShardRun {
            shards: HOT_SHARDS,
            batch: BATCH,
            pipelined,
            clients: CLIENTS,
            rounds,
            store_delay: HOT_STORE_DELAY,
            hot_clients: HOT_CLIENTS,
        };
        let base = if pipelined { "pipelined" } else { "sync" };
        let hot = measure_for(&cfg, window);
        let hot_mode = format!("{base}-hot");
        println!("{hot_mode:>13} x {HOT_SHARDS} shard(s): {hot:>10.0} ops/s");
        results.push((hot_mode, HOT_SHARDS, hot, None));
        let fe = measure_frontend_for(&cfg, HOT_SHARDS as usize, window);
        let fe_mode = format!("{base}-fe");
        println!("{fe_mode:>13} x {HOT_SHARDS} shard(s): {fe:>10.0} ops/s");
        results.push((fe_mode, HOT_SHARDS, fe, None));

        let (adm, health) = measure_frontend_admitted(&cfg, HOT_SHARDS as usize, window);
        let health = health.expect("sharded deployments expose admission");
        let cold = health
            .tenant(COLD_TENANT)
            .expect("metered tenant measured")
            .overall;
        let hot_rejected = health
            .tenant(HOT_TENANT)
            .map(|t| t.rejected)
            .unwrap_or_default();
        let adm_mode = format!("{base}-adm");
        println!(
            "{adm_mode:>13} x {HOT_SHARDS} shard(s): {adm:>10.0} ops/s  \
             cold tenant p50/p99/p999 = {}/{}/{} µs (hot rejected {hot_rejected})",
            cold.p50_us, cold.p99_us, cold.p999_us
        );
        results.push((
            adm_mode,
            HOT_SHARDS,
            adm,
            Some((cold.p50_us as f64, cold.p99_us as f64, cold.p999_us as f64)),
        ));

        // The root fix: the same skewed deployment after the
        // heat-aware rebalancer migrated the hot shard's slices across
        // the cold shards live (epoch-versioned routing, clients
        // chasing typed redirects). Where `*-fe`/`*-adm` mitigate the
        // collapse in front of the hot shard, this removes it.
        let rs = measure_resharded(&cfg, window);
        let rs_mode = format!("{base}-reshard");
        println!("{rs_mode:>13} x {HOT_SHARDS} shard(s): {rs:>10.0} ops/s");
        results.push((rs_mode, HOT_SHARDS, rs, None));
    }

    // Replicated shard groups: write cost of the majority quorum, and
    // verified-read scale-out across followers, both against the
    // 1-member control group.
    for &replicas in &[1u32, REPLICAS] {
        let cfg = ReplicaRun {
            replicas,
            batch: BATCH,
            clients: REP_CLIENTS,
            rounds,
            store_delay: STORE_DELAY,
            ecall_cost: ECALL_COST,
        };
        let write = measure_replicated_write(&cfg);
        let wmode = format!("rep-write-{replicas}");
        println!("{wmode:>13} x 1 shard(s): {write:>10.0} ops/s");
        results.push((wmode, 1, write, None));
        let read = measure_replicated_reads(&cfg, REP_READERS, window);
        let rmode = format!("rep-read-{replicas}");
        println!("{rmode:>13} x 1 shard(s): {read:>10.0} ops/s");
        results.push((rmode, 1, read, None));
    }

    // Sealed delta-log engine: identical write workload, resident
    // state 1000x apart. The cells gate state-size independence.
    for (label, preload) in [
        (DELTA_SMALL_MODE, DELTA_SMALL),
        (DELTA_LARGE_MODE, DELTA_LARGE),
    ] {
        let ops = measure_delta(&DeltaRun {
            preload,
            batch: BATCH,
            clients: CLIENTS,
            rounds,
            store_delay: STORE_DELAY,
        });
        println!("{label:>13} x 1 shard(s): {ops:>10.0} ops/s");
        results.push((label.to_string(), 1, ops, None));
    }

    let ops_of = |mode: &str, shards: u32| {
        results
            .iter()
            .find(|(m, s, _, _)| m == mode && *s == shards)
            .map(|&(_, _, x, _)| x)
            .unwrap_or(f64::NAN)
    };
    let sync_speedup = ops_of("sync", 4) / ops_of("sync", 1);
    let pipe_speedup = ops_of("pipelined", 4) / ops_of("pipelined", 1);
    let scaleout_sync = ops_of("sync", 8) / ops_of("sync", 4);
    let scaleout_pipe = ops_of("pipelined", 8) / ops_of("pipelined", 4);
    let fe_sync = ops_of("sync-fe", HOT_SHARDS) / ops_of("sync-hot", HOT_SHARDS);
    let fe_pipe = ops_of("pipelined-fe", HOT_SHARDS) / ops_of("pipelined-hot", HOT_SHARDS);
    let reshard_sync = ops_of("sync-reshard", HOT_SHARDS) / ops_of("sync-hot", HOT_SHARDS);
    let reshard_pipe =
        ops_of("pipelined-reshard", HOT_SHARDS) / ops_of("pipelined-hot", HOT_SHARDS);
    let rep_write_cost = ops_of("rep-write-1", 1) / ops_of(&format!("rep-write-{REPLICAS}"), 1);
    let rep_read_scaleout = ops_of(&format!("rep-read-{REPLICAS}"), 1) / ops_of("rep-read-1", 1);
    let delta_independence = ops_of(DELTA_LARGE_MODE, 1) / ops_of(DELTA_SMALL_MODE, 1);
    println!("4-shard speedup: sync {sync_speedup:.2}x, pipelined {pipe_speedup:.2}x");
    println!("8-over-4-shard scale-out: sync {scaleout_sync:.2}x, pipelined {scaleout_pipe:.2}x");
    println!(
        "front-end speedup at {HOT_SHARDS} shards (skewed): sync {fe_sync:.2}x, \
         pipelined {fe_pipe:.2}x"
    );
    println!(
        "reshard recovery at {HOT_SHARDS} shards (skewed, live slice migration): \
         sync {reshard_sync:.2}x, pipelined {reshard_pipe:.2}x"
    );
    println!(
        "replica group at {REPLICAS} members: write cost {rep_write_cost:.2}x, \
         follower-read scale-out {rep_read_scaleout:.2}x"
    );
    println!(
        "delta-log state-size independence: {delta_independence:.2}x \
         ({DELTA_LARGE} vs {DELTA_SMALL} resident records)"
    );

    // Hand-rolled JSON: the sanctioned dependency set has no JSON
    // serializer, and the schema is flat enough not to need one.
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"lcm-bench-snapshot/1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"clients\": {CLIENTS}, \"batch\": {BATCH}, \
         \"store_delay_us\": {}, \"rounds\": {rounds}, \
         \"hot_clients\": {HOT_CLIENTS}, \"hot_store_delay_us\": {}, \
         \"window_ms\": {}, \"replicas\": {REPLICAS}, \
         \"rep_clients\": {REP_CLIENTS}, \"rep_readers\": {REP_READERS}, \
         \"ecall_cost_us\": {}, \"delta_small\": {DELTA_SMALL}, \
         \"delta_large\": {DELTA_LARGE}}},\n",
        STORE_DELAY.as_micros(),
        HOT_STORE_DELAY.as_micros(),
        window.as_millis(),
        ECALL_COST.as_micros()
    ));
    json.push_str("  \"results\": [\n");
    for (i, (mode, shards, ops, lat)) in results.iter().enumerate() {
        let lat_fields = lat
            .map(|(p50, p99, p999)| {
                format!(", \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}, \"p999_us\": {p999:.1}")
            })
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"mode\": \"{mode}\", \"shards\": {shards}, \"ops_per_s\": {ops:.1}{lat_fields}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4shards\": {{\"sync\": {sync_speedup:.3}, \"pipelined\": {pipe_speedup:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"shard_scaleout_8v4\": {{\"sync\": {scaleout_sync:.3}, \"pipelined\": {scaleout_pipe:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"frontend_speedup_8shards\": {{\"sync\": {fe_sync:.3}, \"pipelined\": {fe_pipe:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"reshard_recovery_8shards\": {{\"sync\": {reshard_sync:.3}, \"pipelined\": {reshard_pipe:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"replica_group_{REPLICAS}x\": {{\"write_cost\": {rep_write_cost:.3}, \
         \"read_scaleout\": {rep_read_scaleout:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"delta_independence\": {delta_independence:.3}\n"
    ));
    json.push_str("}\n");

    let dir = std::env::var("LCM_OUT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_pipeline.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(writing {} failed: {e})", path.display()),
    }
}
