//! Machine-readable performance snapshot: `BENCH_pipeline.json`.
//!
//! Runs the pipeline + sharding benches briefly on the real stack and
//! emits ops/s per (mode × shard count) as JSON, so the performance
//! trajectory of the repository is tracked from one committed artifact
//! onward. CI regenerates it in the figures job; regenerate locally
//! with
//!
//! ```text
//! cargo run -p lcm-bench --bin bench_snapshot --release
//! ```
//!
//! The file lands in `$LCM_OUT_DIR` when set, else the working
//! directory. Numbers are wall-clock and machine-dependent — the
//! tracked signal is the *ratio* between configurations (async vs
//! sync, 4 shards vs 1), which is hardware-stable because the store
//! cost is modelled (`DelayedStorage`).

use std::time::Duration;

use lcm_bench::shardbench::{measure, ShardRun};

const CLIENTS: u32 = 64;
const BATCH: usize = 16;
/// Large enough that persistence — the thing sharding parallelizes —
/// is the clear bottleneck in both modes, keeping the recorded ratios
/// stable across runner hardware.
const STORE_DELAY: Duration = Duration::from_micros(400);
const SHARDS: [u32; 2] = [1, 4];

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

fn main() {
    let rounds = if quick() { 2 } else { 8 };
    let mut results: Vec<(String, u32, f64)> = Vec::new();
    for pipelined in [false, true] {
        for &shards in &SHARDS {
            let ops = measure(&ShardRun {
                shards,
                batch: BATCH,
                pipelined,
                clients: CLIENTS,
                rounds,
                store_delay: STORE_DELAY,
            });
            let mode = if pipelined { "pipelined" } else { "sync" };
            println!("{mode:>9} x {shards} shard(s): {ops:>10.0} ops/s");
            results.push((mode.to_string(), shards, ops));
        }
    }

    let ops_of = |mode: &str, shards: u32| {
        results
            .iter()
            .find(|(m, s, _)| m == mode && *s == shards)
            .map(|&(_, _, x)| x)
            .unwrap_or(f64::NAN)
    };
    let sync_speedup = ops_of("sync", 4) / ops_of("sync", 1);
    let pipe_speedup = ops_of("pipelined", 4) / ops_of("pipelined", 1);
    println!("4-shard speedup: sync {sync_speedup:.2}x, pipelined {pipe_speedup:.2}x");

    // Hand-rolled JSON: the sanctioned dependency set has no JSON
    // serializer, and the schema is flat enough not to need one.
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"lcm-bench-snapshot/1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"clients\": {CLIENTS}, \"batch\": {BATCH}, \
         \"store_delay_us\": {}, \"rounds\": {rounds}}},\n",
        STORE_DELAY.as_micros()
    ));
    json.push_str("  \"results\": [\n");
    for (i, (mode, shards, ops)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{mode}\", \"shards\": {shards}, \"ops_per_s\": {ops:.1}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4shards\": {{\"sync\": {sync_speedup:.3}, \"pipelined\": {pipe_speedup:.3}}}\n"
    ));
    json.push_str("}\n");

    let dir = std::env::var("LCM_OUT_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_pipeline.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("(writing {} failed: {e})", path.display()),
    }
}
