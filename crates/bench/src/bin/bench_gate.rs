//! CI performance-regression gate over `BENCH_pipeline.json`.
//!
//! ```text
//! bench_gate <committed-baseline.json> <fresh-snapshot.json>
//! ```
//!
//! Compares the freshly measured snapshot (produced by the
//! `bench_snapshot` bin earlier in the same CI job) against the
//! baseline committed in the repository, cell by cell
//! (mode × shard count). Exits non-zero when any cell regressed more
//! than the tolerance band — 40% by default, overridable through
//! `LCM_BENCH_TOLERANCE` (e.g. `0.5` allows a 50% drop) for noisy
//! runners.
//!
//! The band is deliberately generous: snapshot numbers are wall-clock
//! and machine-dependent, and the modelled store delay keeps the
//! *ratios* stable, not the absolutes. The gate exists so the PR 2/3
//! speedups (async pipeline, shard fan-out) cannot silently rot into
//! an integer-factor collapse — not to police jitter.

use std::process::ExitCode;

use lcm_bench::gate::{
    compare, delta_independence, parse_config, parse_snapshot, reshard_recovery, shard_scaleout,
    tolerance_from_env, DELTA_INDEPENDENCE_FLOOR, RESHARD_RECOVERY_FLOOR, SHARD_SCALEOUT_FLOOR,
};

type Snapshot = (Vec<lcm_bench::gate::Cell>, Option<String>);

fn load(path: &str) -> Option<Snapshot> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            return None;
        }
    };
    let cells = parse_snapshot(&text);
    if cells.is_none() {
        eprintln!("bench_gate: {path} is not an lcm-bench-snapshot/1 document");
    }
    Some((cells?, parse_config(&text)))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_gate <committed-baseline.json> <fresh-snapshot.json>");
        return ExitCode::FAILURE;
    };
    let (Some((baseline, baseline_cfg)), Some((fresh, fresh_cfg))) =
        (load(baseline_path), load(fresh_path))
    else {
        return ExitCode::FAILURE;
    };
    // ops/s only compare under the same workload knobs: a config drift
    // (someone changed bench_snapshot's constants without regenerating
    // the committed baseline) must be an explicit failure, not a
    // silently meaningless comparison.
    if baseline_cfg != fresh_cfg {
        eprintln!(
            "bench_gate: snapshots were measured under different configs\n  baseline: {}\n  fresh:    {}\n\
             regenerate the committed baseline with `cargo run --release -p lcm-bench --bin bench_snapshot`",
            baseline_cfg.as_deref().unwrap_or("<missing>"),
            fresh_cfg.as_deref().unwrap_or("<missing>")
        );
        return ExitCode::FAILURE;
    }

    let tolerance = tolerance_from_env();
    println!(
        "performance gate: fresh vs committed baseline, tolerance {:.0}%",
        tolerance * 100.0
    );
    lcm_bench::header(&[
        "mode",
        "shards",
        "baseline ops/s",
        "fresh ops/s",
        "floor",
        "baseline p99",
        "fresh p99",
        "ceiling",
        "verdict",
    ]);
    let verdicts = compare(&baseline, &fresh, tolerance);
    let mut failed = false;
    for v in &verdicts {
        let fresh_str = v
            .fresh_ops_per_s
            .map(|x| format!("{x:.0}"))
            .unwrap_or_else(|| "MISSING".into());
        let us = |x: Option<f64>, missing: &str| {
            x.map(|x| format!("{x:.0}µs"))
                .unwrap_or_else(|| missing.into())
        };
        // A latency column only means something on SLO cells; the
        // throughput-only rows show "-" rather than MISSING.
        let (b_p99, f_p99, ceiling) = if v.baseline.p99_us.is_some() {
            (
                us(v.baseline.p99_us, "-"),
                us(v.fresh_p99_us, "MISSING"),
                us(v.p99_ceiling, "-"),
            )
        } else {
            ("-".into(), "-".into(), "-".into())
        };
        println!(
            "| {} | {} | {:.0} | {} | {:.0} | {} | {} | {} | {} |",
            v.baseline.mode,
            v.baseline.shards,
            v.baseline.ops_per_s,
            fresh_str,
            v.floor,
            b_p99,
            f_p99,
            ceiling,
            if v.failed { "FAIL" } else { "ok" }
        );
        failed |= v.failed;
    }
    // State-size independence of the delta-log engine, gated on the
    // *fresh* snapshot's own ratio: the per-cell band above tolerates
    // both delta cells drifting with the runner, but the 10⁶-record
    // cell falling away from the small one means a persist path has
    // started scaling with resident state again. Only enforced once
    // the committed baseline carries the delta cells.
    if delta_independence(&baseline).is_some() {
        match delta_independence(&fresh) {
            Some(ratio) if ratio >= DELTA_INDEPENDENCE_FLOOR => {
                println!(
                    "delta-log state-size independence: {ratio:.2}x \
                     (floor {DELTA_INDEPENDENCE_FLOOR})"
                );
            }
            Some(ratio) => {
                eprintln!(
                    "bench_gate: delta-log independence ratio {ratio:.2} fell below \
                     the {DELTA_INDEPENDENCE_FLOOR} floor — the 10^6-record store \
                     costs more than 2x the small one per write"
                );
                failed = true;
            }
            None => {
                eprintln!(
                    "bench_gate: fresh snapshot lost the delta-log cells the \
                     baseline gates"
                );
                failed = true;
            }
        }
    }
    // Routing invariants of the epoch-versioned slice table, gated on
    // the *fresh* snapshot's own ratios (same rationale as the delta
    // independence check): the per-cell band tolerates the runner
    // drifting, but the reshard cell falling back toward the hot cell
    // — or the uniform 8-shard fan-out falling back to 4-shard
    // throughput — is exactly the scaling the slice router exists to
    // buy. Only enforced once the committed baseline carries the
    // cells.
    for base in ["sync", "pipelined"] {
        if reshard_recovery(&baseline, base).is_some() {
            match reshard_recovery(&fresh, base) {
                Some(ratio) if ratio >= RESHARD_RECOVERY_FLOOR => {
                    println!(
                        "{base} reshard recovery: {ratio:.2}x (floor {RESHARD_RECOVERY_FLOOR})"
                    );
                }
                Some(ratio) => {
                    eprintln!(
                        "bench_gate: {base} reshard recovery {ratio:.2} fell below the \
                         {RESHARD_RECOVERY_FLOOR} floor — live slice migration no longer \
                         relieves the hot shard"
                    );
                    failed = true;
                }
                None => {
                    eprintln!(
                        "bench_gate: fresh snapshot lost the {base} reshard/hot cells the \
                         baseline gates"
                    );
                    failed = true;
                }
            }
        }
        if shard_scaleout(&baseline, base).is_some() {
            match shard_scaleout(&fresh, base) {
                Some(ratio) if ratio >= SHARD_SCALEOUT_FLOOR => {
                    println!("{base} 8-over-4-shard scale-out: {ratio:.2}x (floor {SHARD_SCALEOUT_FLOOR})");
                }
                Some(ratio) => {
                    eprintln!(
                        "bench_gate: {base} 8-shard throughput is only {ratio:.2}x the 4-shard \
                         cell (floor {SHARD_SCALEOUT_FLOOR}) — the shard fan-out stopped \
                         scaling past 4"
                    );
                    failed = true;
                }
                None => {
                    eprintln!(
                        "bench_gate: fresh snapshot lost the {base} 4/8-shard cells the \
                         baseline gates"
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!(
            "bench_gate: throughput or p99 latency regressed beyond the {:.0}% band; \
             if this is expected (e.g. a deliberate trade-off), regenerate \
             BENCH_pipeline.json with `cargo run --release -p lcm-bench \
             --bin bench_snapshot` and commit it with the change",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all {} cells within band", verdicts.len());
    ExitCode::SUCCESS
}
