//! Figure 4 — throughput with different object sizes (async writes).
//!
//! Paper setup: 8 clients, 1000 objects, object sizes 100–2500 B,
//! YCSB workload A, asynchronous disk writes; series SGX and LCM.
//! Headline numbers: LCM overhead 20.12 % at 100 B, 10.96 % at 2500 B.
//!
//! Regenerate: `cargo run -p lcm-bench --bin fig4 --release`

use lcm_bench::{compare, header, kops, write_csv};
use lcm_sim::scenario::run_figure4;
use lcm_sim::CostModel;

fn main() {
    let model = CostModel::default();
    println!("Figure 4: throughput vs object size, 8 clients, async writes\n");
    header(&[
        "object size [B]",
        "SGX [kops/s]",
        "LCM [kops/s]",
        "LCM overhead",
    ]);

    let rows = run_figure4(&model);
    let mut first_ovh = 0.0;
    let mut last_ovh = 0.0;
    for (i, (size, sgx, lcm)) in rows.iter().enumerate() {
        let ovh = 1.0 - lcm / sgx;
        if i == 0 {
            first_ovh = ovh;
        }
        last_ovh = ovh;
        println!(
            "| {size:>14} | {} | {} | {:>10.2}% |",
            kops(*sgx),
            kops(*lcm),
            ovh * 100.0
        );
    }

    write_csv(
        "fig4",
        &["object_size_B", "sgx_ops_per_s", "lcm_ops_per_s"],
        &rows
            .iter()
            .map(|(size, sgx, lcm)| {
                vec![size.to_string(), format!("{sgx:.1}"), format!("{lcm:.1}")]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nPaper-vs-measured:");
    compare(
        "LCM overhead at 100 B objects",
        "20.12 %",
        &format!("{:.2} %", first_ovh * 100.0),
    );
    compare(
        "LCM overhead at 2500 B objects",
        "10.96 %",
        &format!("{:.2} %", last_ovh * 100.0),
    );
    compare(
        "overhead decreases with object size",
        "yes",
        if first_ovh > last_ovh { "yes" } else { "NO" },
    );
}
