//! Ablation — shard-count sweep for the multi-enclave server.
//!
//! After async writes (PR 2) the throughput ceiling is stage 2: one
//! enclave executing and sealing every batch. This sweep quantifies
//! the next lever — `shards` parallel enclaves behind the
//! key-partitioned router — and its interplay with batching: batching
//! and sharding are *competing amortizers* of the per-batch store, so
//! at a fixed client count the shard speedup is largest when batches
//! are small relative to the offered concurrency.
//!
//! Two parts, mirroring `ablation_batch`:
//! 1. the calibrated simulator (virtual time, `Scenario::shards`), and
//! 2. a **real-stack** sweep over shards {1, 2, 4, 8} × batch
//!    {16, 64}, driving actual `ShardedServer` deployments (sync and
//!    pipelined shards) against storage with a modelled per-store
//!    latency, in wall-clock time.
//!
//! Regenerate: `cargo run -p lcm-bench --bin ablation_shards --release`
//! (set `CRITERION_QUICK=1` for a fast smoke run)

use std::time::Duration;

use lcm_bench::shardbench::{measure, ShardRun};
use lcm_bench::{header, kops, write_csv};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;

const SHARD_SWEEP: [u32; 4] = [1, 2, 4, 8];
const BATCH_SWEEP: [usize; 2] = [16, 64];
/// Modelled write+fsync latency per store call in the real sweep.
const STORE_DELAY: Duration = Duration::from_micros(200);

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

fn main() {
    let model = CostModel::default();
    println!("Ablation: shard-count sweep, LCM with batching, 128 clients (simulator)\n");
    header(&["shards", "batch", "fsync [kops/s]", "vs 1 shard"]);
    let mut sim_rows = Vec::new();
    for &batch in &BATCH_SWEEP {
        let mut base = 0.0;
        for &shards in &SHARD_SWEEP {
            let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch }, 128);
            scenario.fsync = true;
            scenario.shards = shards as usize;
            let x = run_scenario(&model, &scenario).throughput();
            if shards == 1 {
                base = x;
            }
            println!(
                "| {shards:>6} | {batch:>5} | {} | {:>9.2}x |",
                kops(x),
                x / base
            );
            sim_rows.push(vec![
                shards.to_string(),
                batch.to_string(),
                format!("{x:.1}"),
            ]);
        }
    }
    write_csv(
        "ablation_shards_sim",
        &["shards", "batch", "fsync_ops_per_s"],
        &sim_rows,
    );
    println!("\n(batching and sharding compete: with batch >= clients/shards the");
    println!(" store is already amortized and extra shards buy little)");

    // Part 2: the real stack under wall-clock storage cost.
    let (clients, rounds) = if quick() { (64, 2) } else { (128, 4) };
    println!("\nReal stack: {clients} clients, {rounds} rounds/config, {STORE_DELAY:?}/store\n");
    header(&[
        "shards",
        "batch",
        "sync [ops/s]",
        "pipelined [ops/s]",
        "sync vs 1 shard",
    ]);
    let mut real_rows = Vec::new();
    for &batch in &BATCH_SWEEP {
        let mut base_sync = 0.0;
        for &shards in &SHARD_SWEEP {
            let cfg = ShardRun {
                shards,
                batch,
                pipelined: false,
                clients,
                rounds,
                store_delay: STORE_DELAY,
                hot_clients: 0,
            };
            let sync = measure(&cfg);
            let pipe = measure(&ShardRun {
                pipelined: true,
                ..cfg
            });
            if shards == 1 {
                base_sync = sync;
            }
            println!(
                "| {shards:>6} | {batch:>5} | {sync:>12.0} | {pipe:>17.0} | {:>14.2}x |",
                sync / base_sync
            );
            real_rows.push(vec![
                shards.to_string(),
                batch.to_string(),
                format!("{sync:.1}"),
                format!("{pipe:.1}"),
            ]);
        }
    }
    write_csv(
        "ablation_shards_real",
        &["shards", "batch", "sync_ops_per_s", "pipelined_ops_per_s"],
        &real_rows,
    );
    println!("\n(each shard owns its own storage region, so the modelled device");
    println!(" latency overlaps across shards; one core suffices to see it)");
}
