//! §6.5 — the performance impact of trusted monotonic counters.
//!
//! Paper claims: the emulated TMC (60 ms per increment, matching the
//! measured Intel ME counter on Windows) holds throughput constant at
//! ≈ 12 ops/s regardless of client count, while LCM with batching is
//! **96× – 2063×** faster.
//!
//! The third column prices the *replicated* deployment: LCM batching
//! with a 3-member (2f+1) shard group, where every batch additionally
//! pays two follower applies and acks (`CostModel::replica_ack`).
//! That is the fair comparison point against a TMC — both protect
//! against rollback across crashes, but the quorum does it at batch
//! granularity instead of one 60 ms counter bump per state change,
//! and survives enclave failures a single TMC-backed enclave cannot.
//!
//! Regenerate: `cargo run -p lcm-bench --bin sec6_5_tmc --release`

use lcm_bench::{compare, header, write_csv};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{client_counts, run_scenario, Scenario};
use lcm_sim::CostModel;

fn main() {
    let model = CostModel::default();
    println!("Section 6.5: trusted monotonic counter vs LCM with batching\n");
    header(&[
        "clients",
        "SGX+TMC [ops/s]",
        "LCM+batch [ops/s]",
        "LCM 2f+1 x3 [ops/s]",
        "speedup",
        "rep speedup",
    ]);

    let mut speedups = Vec::new();
    let mut rep_speedups = Vec::new();
    let mut tmc_rates = Vec::new();
    let mut rows = Vec::new();
    for n in client_counts() {
        let tmc =
            run_scenario(&model, &Scenario::paper_default(ServerKind::SgxTmc, n)).throughput();
        let lcm = run_scenario(
            &model,
            &Scenario::paper_default(ServerKind::Lcm { batch: 16 }, n),
        )
        .throughput();
        let mut replicated = Scenario::paper_default(ServerKind::Lcm { batch: 16 }, n);
        replicated.replicas = 3;
        let rep = run_scenario(&model, &replicated).throughput();
        let speedup = lcm / tmc;
        let rep_speedup = rep / tmc;
        speedups.push(speedup);
        rep_speedups.push(rep_speedup);
        tmc_rates.push(tmc);
        println!(
            "| {n:>7} | {tmc:>15.1} | {lcm:>17.0} | {rep:>19.0} | {speedup:>6.0}x | {rep_speedup:>9.0}x |"
        );
        rows.push(vec![
            n.to_string(),
            format!("{tmc:.1}"),
            format!("{lcm:.1}"),
            format!("{rep:.1}"),
            format!("{speedup:.1}"),
            format!("{rep_speedup:.1}"),
        ]);
    }
    write_csv(
        "sec6_5_tmc",
        &[
            "clients",
            "tmc_ops_per_s",
            "lcm_batch_ops_per_s",
            "lcm_replicated3_ops_per_s",
            "speedup",
            "replicated_speedup",
        ],
        &rows,
    );

    println!("\nPaper-vs-measured:");
    compare(
        "TMC throughput (constant)",
        "~12 ops/s",
        &format!(
            "{:.1} ops/s (60 ms emulated increment; the paper's 12 includes sleep jitter)",
            tmc_rates.iter().sum::<f64>() / tmc_rates.len() as f64
        ),
    );
    compare(
        "LCM+batch speedup over TMC",
        "96x – 2063x",
        &format!(
            "{:.0}x – {:.0}x",
            speedups.iter().cloned().fold(f64::INFINITY, f64::min),
            speedups.iter().cloned().fold(0.0f64, f64::max)
        ),
    );
    compare(
        "3-replica quorum vs TMC",
        "(no paper figure: crash-surviving rollback protection)",
        &format!(
            "{:.0}x – {:.0}x faster than a trusted counter, while tolerating f=1 enclave crashes",
            rep_speedups.iter().cloned().fold(f64::INFINITY, f64::min),
            rep_speedups.iter().cloned().fold(0.0f64, f64::max)
        ),
    );
}
