//! Ablation — batch size sweep (design choice from paper §5.2).
//!
//! The paper fixes batching at 16 operations; this sweep shows why
//! that is a reasonable choice: under async writes batching amortizes
//! the seal, and under fsync it amortizes the commit, with diminishing
//! returns past the point where batches stop filling.
//!
//! Two parts:
//! 1. the calibrated simulator sweep (virtual time), and
//! 2. a **real-stack** sweep over {1, 4, 16, 64, 256} driving the
//!    actual servers — synchronous loop vs the pipelined
//!    (asynchronous-write) server — against storage with a modelled
//!    per-store latency, in wall-clock time.
//!
//! Regenerate: `cargo run -p lcm-bench --bin ablation_batch --release`
//! (set `CRITERION_QUICK=1` for a fast smoke run)

use std::sync::Arc;
use std::time::{Duration, Instant};

use lcm_bench::{header, kops, write_csv};
use lcm_core::admin::AdminHandle;
use lcm_core::client::LcmClient;
use lcm_core::codec::WireCodec;
use lcm_core::pipeline::PipelinedServer;
use lcm_core::server::{BatchServer, LcmServer};
use lcm_core::stability::Quorum;
use lcm_core::types::ClientId;
use lcm_kvs::ops::KvOp;
use lcm_kvs::store::KvStore;
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;
use lcm_storage::{DelayedStorage, MemoryStorage};
use lcm_tee::world::TeeWorld;

/// The sweep of the real-stack part (and CI artifact).
const REAL_SWEEP: [usize; 5] = [1, 4, 16, 64, 256];
/// Modelled write+fsync latency per store call in the real sweep.
const STORE_DELAY: Duration = Duration::from_micros(200);

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

/// Measures real ops/sec over `rounds` full rounds of one 100 B put
/// per client, with `batch` as the server batch limit.
fn measure_real(batch: usize, pipelined: bool, n_clients: u32, rounds: u32) -> f64 {
    let world = TeeWorld::new_deterministic(7_700 + batch as u64);
    let platform = world.platform_deterministic(1);
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let inner = LcmServer::<KvStore>::new(&platform, storage, batch);
    let mut server: Box<dyn BatchServer> = if pipelined {
        Box::new(PipelinedServer::new(inner))
    } else {
        Box::new(inner)
    };
    server.boot().unwrap();
    let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 7);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<LcmClient> = ids
        .iter()
        .map(|&id| LcmClient::new(id, admin.client_key()))
        .collect();

    let payload = vec![0x42u8; 100];
    let t0 = Instant::now();
    for _ in 0..rounds {
        for c in clients.iter_mut() {
            let op = KvOp::Put(b"k".to_vec(), payload.clone());
            server.submit(c.invoke(&op.to_bytes()).unwrap());
        }
        let replies = server.process_all().unwrap();
        for (id, wire) in replies {
            let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
            c.handle_reply(&wire).unwrap();
        }
    }
    server.flush_persists().unwrap();
    let total_ops = (n_clients * rounds) as f64;
    total_ops / t0.elapsed().as_secs_f64()
}

fn main() {
    let model = CostModel::default();
    println!("Ablation: LCM batch-size sweep, 32 clients, 100 B objects (simulator)\n");
    header(&["batch size", "async [kops/s]", "fsync [ops/s]"]);

    let mut sim_rows = Vec::new();
    for &batch in &[1usize, 2, 4, 8, 16, 32, 64, 256] {
        let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch }, 32);
        let x_async = run_scenario(&model, &scenario).throughput();
        scenario.fsync = true;
        let x_sync = run_scenario(&model, &scenario).throughput();
        println!("| {batch:>10} | {} | {x_sync:>13.0} |", kops(x_async));
        sim_rows.push(vec![
            batch.to_string(),
            format!("{x_async:.1}"),
            format!("{x_sync:.1}"),
        ]);
    }
    write_csv(
        "ablation_batch_sim",
        &["batch", "async_ops_per_s", "fsync_ops_per_s"],
        &sim_rows,
    );
    println!("\n(batches only fill while enough clients keep the queue non-empty,");
    println!(" so gains taper beyond the offered concurrency)");

    // Part 2: the real stack under wall-clock storage cost.
    let (n_clients, rounds) = if quick() { (64, 2) } else { (256, 4) };
    println!(
        "\nReal stack: {n_clients} clients, {rounds} rounds/config, \
         {STORE_DELAY:?}/store\n"
    );
    header(&["batch size", "sync [ops/s]", "pipelined [ops/s]", "speedup"]);
    let mut real_rows = Vec::new();
    for &batch in &REAL_SWEEP {
        let sync = measure_real(batch, false, n_clients, rounds);
        let pipe = measure_real(batch, true, n_clients, rounds);
        println!(
            "| {batch:>10} | {sync:>12.0} | {pipe:>17.0} | {:>6.2}x |",
            pipe / sync
        );
        real_rows.push(vec![
            batch.to_string(),
            format!("{sync:.1}"),
            format!("{pipe:.1}"),
        ]);
    }
    write_csv(
        "ablation_batch_real",
        &["batch", "sync_ops_per_s", "pipelined_ops_per_s"],
        &real_rows,
    );
    println!("\n(the pipelined server hides the store behind execution; once the");
    println!(" batch limit exceeds the offered concurrency both modes converge)");
}
