//! Ablation — batch size sweep (design choice from paper §5.2).
//!
//! The paper fixes batching at 16 operations; this sweep shows why
//! that is a reasonable choice: under async writes batching amortizes
//! the seal, and under fsync it amortizes the commit, with diminishing
//! returns past the point where batches stop filling.
//!
//! Regenerate: `cargo run -p lcm-bench --bin ablation_batch --release`

use lcm_bench::{header, kops};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;

fn main() {
    let model = CostModel::default();
    println!("Ablation: LCM batch-size sweep, 32 clients, 100 B objects\n");
    header(&["batch size", "async [kops/s]", "fsync [ops/s]"]);

    for &batch in &[1usize, 2, 4, 8, 16, 32, 64] {
        let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch }, 32);
        let x_async = run_scenario(&model, &scenario).throughput();
        scenario.fsync = true;
        let x_sync = run_scenario(&model, &scenario).throughput();
        println!("| {batch:>10} | {} | {x_sync:>13.0} |", kops(x_async));
    }
    println!("\n(batches only fill while enough clients keep the queue non-empty,");
    println!(" so gains taper beyond the offered concurrency)");
}
