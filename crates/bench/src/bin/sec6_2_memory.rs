//! §6.2 — enclave memory consumption and EPC paging.
//!
//! Paper setup: insert up to 1 M objects (40 B keys, 100 B values)
//! into the enclave KVS; measure heap allocation with sgx-gdb and
//! GET/PUT latency. Headline numbers: `std::map` memory overhead
//! ≈ 134 % (93 MB at 300 k objects instead of the expected ~40 MB);
//! operation latency rises by up to 240 % past ~300 k objects when EPC
//! paging sets in.
//!
//! This harness reproduces both effects: the heap accounting runs the
//! real `KvStore` memory model; the latency knee applies the EPC
//! paging penalty to the simulated in-enclave execution cost.
//!
//! Regenerate: `cargo run -p lcm-bench --bin sec6_2_memory --release`

use lcm_bench::{compare, header, write_csv};
use lcm_core::functionality::Functionality;
use lcm_kvs::ops::KvOp;
use lcm_kvs::store::KvStore;
use lcm_tee::epc::{EpcModel, MapMemoryModel};

fn main() {
    let epc = EpcModel::default();
    let memory = MapMemoryModel::default();

    println!("Section 6.2: enclave memory and EPC paging\n");

    // Part 1: memory accounting (real store, sampled object counts).
    header(&[
        "objects",
        "payload [MB]",
        "enclave heap [MB]",
        "overhead",
        "paging?",
        "latency penalty",
    ]);
    let mut rows = Vec::new();
    for &n in &[
        10_000usize,
        100_000,
        200_000,
        300_000,
        500_000,
        750_000,
        1_000_000,
    ] {
        let payload_mb = n as f64 * 140.0 / 1e6;
        let heap = memory.heap_for_objects(n, 40, 100);
        let heap_mb = heap as f64 / 1e6;
        let overhead = (heap_mb - payload_mb) / payload_mb;
        let penalty = epc.access_penalty(heap);
        let paging = if epc.is_paging(heap) { "yes" } else { "no" };
        println!(
            "| {n:>9} | {payload_mb:>11.1} | {heap_mb:>16.1} | {:>7.0}% | {paging:>7} | {:>14.0}% |",
            overhead * 100.0,
            (penalty - 1.0) * 100.0
        );
        rows.push(vec![
            n.to_string(),
            format!("{payload_mb:.1}"),
            format!("{heap_mb:.1}"),
            format!("{:.3}", overhead),
            paging.to_string(),
            format!("{:.3}", penalty - 1.0),
        ]);
    }
    write_csv(
        "sec6_2_memory",
        &[
            "objects",
            "payload_mb",
            "heap_mb",
            "overhead",
            "paging",
            "latency_penalty",
        ],
        &rows,
    );

    // Part 2: verify the heap model against the real KvStore by
    // inserting a real (smaller) population and extrapolating.
    let mut store = KvStore::default();
    let sample = 50_000usize;
    for i in 0..sample {
        store.apply(&KvOp::Put(
            format!("user{i:0>36}").into_bytes(),
            vec![b'v'; 100],
        ));
    }
    let measured = store.heap_bytes();
    let extrapolated_300k = measured as f64 * (300_000.0 / sample as f64) / 1e6;

    println!("\nPaper-vs-measured:");
    compare(
        "std::map memory overhead (40 B + 100 B objects)",
        "~134 %",
        &format!("{:.0} %", memory.overhead_factor(40, 100) * 100.0),
    );
    compare(
        "heap at 300 k objects",
        "93 MB",
        &format!("{extrapolated_300k:.0} MB (extrapolated from a real {sample}-object store)"),
    );
    compare(
        "latency increase at 1 M objects",
        "up to 240 %",
        &format!(
            "{:.0} %",
            (epc.access_penalty(memory.heap_for_objects(1_000_000, 40, 100)) - 1.0) * 100.0
        ),
    );
    compare(
        "paging onset",
        "~300 k objects",
        &format!(
            "{} k objects",
            (epc.usable_bytes() / memory.bytes_per_object(40, 100)) / 1000
        ),
    );
}
