//! Shared helpers for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6) and prints the same rows/series the paper
//! reports. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a throughput in the paper's "kops/sec" unit.
pub fn kops(ops_per_sec: f64) -> String {
    format!("{:8.2}", ops_per_sec / 1000.0)
}

/// Prints a Markdown-style table header.
pub fn header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// A paper-vs-measured comparison line for the run summary.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("  {label:<46} paper: {paper:<18} measured: {measured}");
}
