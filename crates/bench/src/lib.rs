//! Shared helpers for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6) and prints the same rows/series the paper
//! reports. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a throughput in the paper's "kops/sec" unit.
pub fn kops(ops_per_sec: f64) -> String {
    format!("{:8.2}", ops_per_sec / 1000.0)
}

/// Prints a Markdown-style table header.
pub fn header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// A paper-vs-measured comparison line for the run summary.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("  {label:<46} paper: {paper:<18} measured: {measured}");
}

/// Additionally writes a figure's rows as `<name>.csv` under
/// `$LCM_OUT_DIR`, when that variable is set — CI runs every figure
/// binary with it and uploads the directory as a workflow artifact.
/// Does nothing (and never fails the figure run) otherwise.
pub fn write_csv(name: &str, columns: &[&str], rows: &[Vec<String>]) {
    let Ok(dir) = std::env::var("LCM_OUT_DIR") else {
        return;
    };
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut csv = String::new();
        csv.push_str(&columns.join(","));
        csv.push('\n');
        for row in rows {
            // Values are plain numbers/identifiers; quote defensively
            // if a field ever contains a comma.
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.contains(',') || v.contains('"') {
                        format!("\"{}\"", v.replace('"', "\"\""))
                    } else {
                        v.clone()
                    }
                })
                .collect();
            csv.push_str(&cells.join(","));
            csv.push('\n');
        }
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        std::fs::write(&path, csv)?;
        eprintln!("(wrote {})", path.display());
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("(LCM_OUT_DIR set but writing {name}.csv failed: {e})");
    }
}

/// [`write_csv`] for a Fig. 5/6-style per-series client sweep.
pub fn series_csv(name: &str, series: &[(lcm_sim::cost::ServerKind, Vec<(usize, f64)>)]) {
    let rows: Vec<Vec<String>> = series
        .iter()
        .flat_map(|(kind, rows)| {
            rows.iter()
                .map(move |(n, x)| vec![kind.label().to_string(), n.to_string(), format!("{x:.1}")])
        })
        .collect();
    write_csv(name, &["series", "clients", "ops_per_s"], &rows);
}

/// Real-stack throughput measurement of the sharded multi-enclave
/// server, shared by the shard ablation, the snapshot bin, and the
/// criterion benches.
pub mod shardbench {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use lcm_core::admin::AdminHandle;
    use lcm_core::client::LcmClient;
    use lcm_core::server::BatchServer;
    use lcm_core::shard::build_sharded;
    use lcm_core::stability::Quorum;
    use lcm_core::types::ClientId;
    use lcm_kvs::ops::KvOp;
    use lcm_kvs::store::KvStore;
    use lcm_storage::{DelayedStorage, MemoryStorage};
    use lcm_tee::world::TeeWorld;

    /// One measurement configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ShardRun {
        /// Number of server shards.
        pub shards: u32,
        /// Per-shard batch limit.
        pub batch: usize,
        /// Whether each shard persists on a background writer.
        pub pipelined: bool,
        /// Closed-loop client count (each client PUTs its own key, so
        /// keys spread across shards by route hash).
        pub clients: u32,
        /// Full submit-all/process-all rounds to measure.
        pub rounds: u32,
        /// Modelled write+fsync latency per store call.
        pub store_delay: Duration,
    }

    /// A live sharded KVS stack: server + bootstrapped clients, ready
    /// to run closed-loop rounds.
    pub struct ShardStack {
        server: Box<dyn BatchServer>,
        clients: Vec<LcmClient>,
        payload: Vec<u8>,
    }

    impl ShardStack {
        /// One full round: every client PUTs a 100 B value under its
        /// own key (keys spread across shards by route hash), then all
        /// replies are processed and completed.
        pub fn round(&mut self) {
            use lcm_core::codec::WireCodec;
            for (i, c) in self.clients.iter_mut().enumerate() {
                let op = KvOp::Put(format!("k{i}").into_bytes(), self.payload.clone());
                self.server
                    .submit(c.invoke_for::<KvStore>(&op.to_bytes()).unwrap());
            }
            let replies = self.server.process_all().unwrap();
            for (id, wire) in replies {
                let c = self.clients.iter_mut().find(|c| c.id() == id).unwrap();
                c.handle_reply(&wire).unwrap();
            }
        }

        /// Blocks until every persist issued so far is durable.
        pub fn flush(&mut self) {
            self.server.flush_persists().unwrap();
        }
    }

    /// Builds the sharded KVS stack for `cfg` (booted, provisioned,
    /// clients attached).
    pub fn setup(cfg: &ShardRun) -> ShardStack {
        let world = TeeWorld::new_deterministic(8_800 + u64::from(cfg.shards));
        let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), cfg.store_delay));
        let mut server: Box<dyn BatchServer> = Box::new(build_sharded::<KvStore>(
            &world,
            1,
            storage,
            cfg.batch,
            cfg.shards,
            cfg.pipelined,
        ));
        assert!(server.boot().unwrap());
        let ids: Vec<ClientId> = (1..=cfg.clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 13);
        admin.bootstrap(&mut server).unwrap();
        let clients = ids
            .iter()
            .map(|&id| LcmClient::new_sharded(id, admin.client_key(), cfg.shards))
            .collect();
        ShardStack {
            server,
            clients,
            payload: vec![0x42u8; 100],
        }
    }

    /// Builds the stack and measures ops/s over the configured rounds
    /// (including a final persistence flush).
    pub fn measure(cfg: &ShardRun) -> f64 {
        let mut stack = setup(cfg);
        let t0 = Instant::now();
        for _ in 0..cfg.rounds {
            stack.round();
        }
        stack.flush();
        f64::from(cfg.clients * cfg.rounds) / t0.elapsed().as_secs_f64()
    }
}
