//! Shared helpers for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6) and prints the same rows/series the paper
//! reports. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a throughput in the paper's "kops/sec" unit.
pub fn kops(ops_per_sec: f64) -> String {
    format!("{:8.2}", ops_per_sec / 1000.0)
}

/// Prints a Markdown-style table header.
pub fn header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// A paper-vs-measured comparison line for the run summary.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("  {label:<46} paper: {paper:<18} measured: {measured}");
}

/// Additionally writes a figure's rows as `<name>.csv` under
/// `$LCM_OUT_DIR`, when that variable is set — CI runs every figure
/// binary with it and uploads the directory as a workflow artifact.
/// Does nothing (and never fails the figure run) otherwise.
pub fn write_csv(name: &str, columns: &[&str], rows: &[Vec<String>]) {
    let Ok(dir) = std::env::var("LCM_OUT_DIR") else {
        return;
    };
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut csv = String::new();
        csv.push_str(&columns.join(","));
        csv.push('\n');
        for row in rows {
            // Values are plain numbers/identifiers; quote defensively
            // if a field ever contains a comma.
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.contains(',') || v.contains('"') {
                        format!("\"{}\"", v.replace('"', "\"\""))
                    } else {
                        v.clone()
                    }
                })
                .collect();
            csv.push_str(&cells.join(","));
            csv.push('\n');
        }
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        std::fs::write(&path, csv)?;
        eprintln!("(wrote {})", path.display());
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("(LCM_OUT_DIR set but writing {name}.csv failed: {e})");
    }
}

/// [`write_csv`] for a Fig. 5/6-style per-series client sweep.
pub fn series_csv(name: &str, series: &[(lcm_sim::cost::ServerKind, Vec<(usize, f64)>)]) {
    let rows: Vec<Vec<String>> = series
        .iter()
        .flat_map(|(kind, rows)| {
            rows.iter()
                .map(move |(n, x)| vec![kind.label().to_string(), n.to_string(), format!("{x:.1}")])
        })
        .collect();
    write_csv(name, &["series", "clients", "ops_per_s"], &rows);
}
