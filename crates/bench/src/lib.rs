//! Shared helpers for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6) and prints the same rows/series the paper
//! reports. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a throughput in the paper's "kops/sec" unit.
pub fn kops(ops_per_sec: f64) -> String {
    format!("{:8.2}", ops_per_sec / 1000.0)
}

/// Prints a Markdown-style table header.
pub fn header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// A paper-vs-measured comparison line for the run summary.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("  {label:<46} paper: {paper:<18} measured: {measured}");
}

/// Additionally writes a figure's rows as `<name>.csv` under
/// `$LCM_OUT_DIR`, when that variable is set — CI runs every figure
/// binary with it and uploads the directory as a workflow artifact.
/// Does nothing (and never fails the figure run) otherwise.
pub fn write_csv(name: &str, columns: &[&str], rows: &[Vec<String>]) {
    let Ok(dir) = std::env::var("LCM_OUT_DIR") else {
        return;
    };
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut csv = String::new();
        csv.push_str(&columns.join(","));
        csv.push('\n');
        for row in rows {
            // Values are plain numbers/identifiers; quote defensively
            // if a field ever contains a comma.
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.contains(',') || v.contains('"') {
                        format!("\"{}\"", v.replace('"', "\"\""))
                    } else {
                        v.clone()
                    }
                })
                .collect();
            csv.push_str(&cells.join(","));
            csv.push('\n');
        }
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        std::fs::write(&path, csv)?;
        eprintln!("(wrote {})", path.display());
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("(LCM_OUT_DIR set but writing {name}.csv failed: {e})");
    }
}

/// The CI performance-regression gate: compares a freshly measured
/// `BENCH_pipeline.json` against the committed baseline, cell by cell
/// (mode × shard count), with a generous tolerance band.
///
/// Numbers in the snapshot are wall-clock and machine-dependent, so
/// the gate is deliberately loose — it exists to catch the PR that
/// accidentally serializes the pipeline or the shard fan-out (an
/// integer-factor collapse), not 5% jitter. The band is overridable
/// through `LCM_BENCH_TOLERANCE` (a fraction: `0.4` = fail below 60%
/// of baseline).
pub mod gate {
    /// One measured cell of the snapshot: `(mode, shards) → ops/s`,
    /// optionally carrying a latency SLO signal.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Cell {
        /// Server mode label (`sync` / `pipelined` / `sync-adm` / …).
        pub mode: String,
        /// Shard count of the measurement.
        pub shards: u32,
        /// Measured throughput.
        pub ops_per_s: f64,
        /// Tail latency of the cell's tracked tenant in microseconds
        /// (the metered tenant's p99 for the `*-adm` cells). `None`
        /// for throughput-only cells — those gate ops/s alone.
        pub p99_us: Option<f64>,
    }

    /// Default allowed regression: fail only when a cell drops more
    /// than 40% below the committed baseline.
    pub const DEFAULT_TOLERANCE: f64 = 0.40;

    /// The tolerance to use: `LCM_BENCH_TOLERANCE` when set and
    /// parseable as a fraction in `(0, 1)`, else
    /// [`DEFAULT_TOLERANCE`]. A set-but-invalid override is loudly
    /// rejected on stderr rather than silently ignored — an operator
    /// who typed `50` for 50% should learn the gate still ran at the
    /// default band.
    pub fn tolerance_from_env() -> f64 {
        let Ok(raw) = std::env::var("LCM_BENCH_TOLERANCE") else {
            return DEFAULT_TOLERANCE;
        };
        match raw.parse::<f64>() {
            Ok(t) if t > 0.0 && t < 1.0 => t,
            _ => {
                eprintln!(
                    "bench_gate: ignoring invalid LCM_BENCH_TOLERANCE={raw:?} \
                     (expected a fraction in (0, 1), e.g. 0.5 for a 50% band); \
                     using the default {DEFAULT_TOLERANCE}"
                );
                DEFAULT_TOLERANCE
            }
        }
    }

    /// Extracts the `"config"` object of a snapshot as a normalized
    /// string (whitespace stripped). Baseline and fresh snapshots are
    /// only comparable when they were measured under the same workload
    /// configuration — the gate refuses to compare ops/s across
    /// different client counts, batch limits, store delays, or round
    /// counts.
    pub fn parse_config(json: &str) -> Option<String> {
        let after = json.split("\"config\"").nth(1)?;
        let obj = after.split('{').nth(1)?.split('}').next()?;
        Some(obj.chars().filter(|c| !c.is_whitespace()).collect())
    }

    /// Extracts the result cells from a `lcm-bench-snapshot/1` JSON
    /// document. The schema is flat and machine-written (see
    /// `bin/bench_snapshot.rs`), so this is a purpose-built scanner,
    /// not a general JSON parser: it walks the `"results"` array and
    /// pulls the three known fields out of each object.
    pub fn parse_snapshot(json: &str) -> Option<Vec<Cell>> {
        if !json.contains("lcm-bench-snapshot/1") {
            return None;
        }
        let results = json.split("\"results\"").nth(1)?;
        let array = results.split('[').nth(1)?.split(']').next()?;
        let mut cells = Vec::new();
        for obj in array.split('{').skip(1) {
            let obj = obj.split('}').next()?;
            let field = |name: &str| -> Option<&str> {
                let after = obj.split(&format!("\"{name}\"")).nth(1)?;
                Some(after.split(':').nth(1)?.split(',').next()?.trim())
            };
            let mode = field("mode")?.trim_matches('"').to_string();
            let shards: u32 = field("shards")?.parse().ok()?;
            let ops_per_s: f64 = field("ops_per_s")?.parse().ok()?;
            let p99_us = field("p99_us").and_then(|v| v.parse().ok());
            cells.push(Cell {
                mode,
                shards,
                ops_per_s,
                p99_us,
            });
        }
        if cells.is_empty() {
            None
        } else {
            Some(cells)
        }
    }

    /// Snapshot mode label of the delta-log engine's small-store cell.
    pub const DELTA_SMALL_MODE: &str = "delta-small";
    /// Snapshot mode label of the delta-log engine's 10⁶-record cell.
    pub const DELTA_LARGE_MODE: &str = "delta-1M";
    /// Floor on `delta-1M / delta-small`: the 10⁶-record store must
    /// keep at least half the small store's write throughput. The
    /// engine seals a batch-shaped diff per group commit, so the true
    /// ratio sits near 1; a ratio under the floor means some persist
    /// path has started scaling with resident state again.
    pub const DELTA_INDEPENDENCE_FLOOR: f64 = 0.5;

    /// Floor on the `*-reshard / *-hot` recovery ratio per mode: the
    /// heat-aware rebalancer must at least double the skewed
    /// deployment's throughput. Measured recovery sits above 3x (the
    /// hot shard's multi-batch backlog becomes one cycle per lane once
    /// its slices spread); a ratio under the floor means live slice
    /// migration stopped relieving the hot shard — the collapse the
    /// epoch-versioned router exists to fix.
    pub const RESHARD_RECOVERY_FLOOR: f64 = 2.0;

    /// Floor on the uniform `8-shard / 4-shard` throughput ratio per
    /// mode. At the snapshot's client count, 4-shard lanes pay two
    /// persist cycles per round where 8-shard lanes pay one, so the
    /// true ratio sits near 1.6 (sync) / 1.9 (pipelined); a ratio
    /// under the floor means the shard fan-out stopped scaling past 4.
    pub const SHARD_SCALEOUT_FLOOR: f64 = 1.15;

    /// The `{base}-reshard / {base}-hot` throughput ratio of a
    /// snapshot, when both cells are present (`base` is `sync` or
    /// `pipelined`). Gated on the fresh snapshot directly, like
    /// [`delta_independence`]: both cells drifting with the runner is
    /// noise the per-cell band tolerates; the reshard cell falling
    /// back toward the hot cell is the regression.
    pub fn reshard_recovery(cells: &[Cell], base: &str) -> Option<f64> {
        let ops = |mode: String| {
            cells
                .iter()
                .find(|c| c.mode == mode)
                .map(|c| c.ops_per_s)
                .filter(|x| *x > 0.0)
        };
        Some(ops(format!("{base}-reshard"))? / ops(format!("{base}-hot"))?)
    }

    /// The uniform `8-shard / 4-shard` throughput ratio of a snapshot
    /// for `base` (`sync` or `pipelined`), when both cells are
    /// present.
    pub fn shard_scaleout(cells: &[Cell], base: &str) -> Option<f64> {
        let ops = |shards: u32| {
            cells
                .iter()
                .find(|c| c.mode == base && c.shards == shards)
                .map(|c| c.ops_per_s)
                .filter(|x| *x > 0.0)
        };
        Some(ops(8)? / ops(4)?)
    }

    /// The delta-log engine's large-over-small throughput ratio of a
    /// snapshot, when both cells are present.
    ///
    /// This invariant is gated on the *fresh* snapshot directly (not
    /// cell-by-cell against the baseline): both cells dropping in
    /// lockstep is runner noise the per-cell band already tolerates,
    /// but the large cell falling away from the small one is exactly
    /// the state-size dependence the engine exists to remove.
    pub fn delta_independence(cells: &[Cell]) -> Option<f64> {
        let ops = |mode: &str| {
            cells
                .iter()
                .find(|c| c.mode == mode)
                .map(|c| c.ops_per_s)
                .filter(|x| *x > 0.0)
        };
        Some(ops(DELTA_LARGE_MODE)? / ops(DELTA_SMALL_MODE)?)
    }

    /// One gate verdict: the baseline cell, what was measured, and
    /// whether it regressed beyond the tolerance.
    #[derive(Debug, Clone)]
    pub struct Verdict {
        /// The baseline cell being checked.
        pub baseline: Cell,
        /// The fresh measurement for the same `(mode, shards)`, if the
        /// fresh snapshot has one.
        pub fresh_ops_per_s: Option<f64>,
        /// The fresh p99 for the same cell, when both snapshots track
        /// one.
        pub fresh_p99_us: Option<f64>,
        /// The minimum acceptable throughput for this cell.
        pub floor: f64,
        /// The maximum acceptable p99 (µs) when the baseline cell
        /// carries a latency SLO: `max(baseline_p99 * (1 + 2 *
        /// tolerance), baseline_p99 + LATENCY_GRACE_US)`.
        pub p99_ceiling: Option<f64>,
        /// Whether this cell fails the gate (regressed past the
        /// throughput floor or the p99 ceiling, or missing from the
        /// fresh snapshot entirely).
        pub failed: bool,
    }

    /// Absolute grace added to every p99 ceiling, in microseconds.
    /// Closed-loop tail latency is quantized by the batch cycle: an op
    /// that misses the forming batch waits one extra seal-and-persist
    /// round, so a cell's p99 legitimately hops between adjacent
    /// multi-millisecond plateaus from run to run. The grace spans one
    /// such plateau; the gate is after admission *collapse* (the
    /// metered tenant queueing behind the whole hot backlog, a many-
    /// tens-of-ms jump), not batch-alignment luck.
    pub const LATENCY_GRACE_US: f64 = 10_000.0;

    /// Compares every baseline cell against the fresh snapshot.
    /// A cell fails when the fresh measurement is missing, its
    /// throughput is below `baseline * (1 - tolerance)`, or — for
    /// cells whose baseline carries a latency SLO — its p99 exceeds
    /// `max(baseline_p99 * (1 + 2 * tolerance), baseline_p99 +
    /// LATENCY_GRACE_US)` (or went missing). The latency band is
    /// wider than the throughput band because tail percentiles are
    /// both noisier and bucket-quantized (see [`LATENCY_GRACE_US`]).
    /// Cells present only in the fresh snapshot are ignored (new
    /// configurations gate nothing yet).
    pub fn compare(baseline: &[Cell], fresh: &[Cell], tolerance: f64) -> Vec<Verdict> {
        baseline
            .iter()
            .map(|b| {
                let floor = b.ops_per_s * (1.0 - tolerance);
                let p99_ceiling = b
                    .p99_us
                    .map(|p| (p * (1.0 + 2.0 * tolerance)).max(p + LATENCY_GRACE_US));
                let fresh_cell = fresh
                    .iter()
                    .find(|f| f.mode == b.mode && f.shards == b.shards);
                let fresh_ops = fresh_cell.map(|f| f.ops_per_s);
                let fresh_p99 = fresh_cell.and_then(|f| f.p99_us);
                let ops_failed = fresh_ops.is_none() || fresh_ops.unwrap_or(0.0) < floor;
                let p99_failed = match p99_ceiling {
                    // A baseline SLO with no fresh p99 means the
                    // latency cell silently vanished: fail loudly.
                    Some(ceiling) => fresh_p99.map_or(true, |p| p > ceiling),
                    None => false,
                };
                Verdict {
                    baseline: b.clone(),
                    fresh_ops_per_s: fresh_ops,
                    fresh_p99_us: fresh_p99,
                    floor,
                    p99_ceiling,
                    failed: ops_failed || p99_failed,
                }
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const SAMPLE: &str = r#"{
  "schema": "lcm-bench-snapshot/1",
  "config": {"clients": 64, "batch": 16, "store_delay_us": 400, "rounds": 8},
  "results": [
    {"mode": "sync", "shards": 1, "ops_per_s": 10000.0},
    {"mode": "sync", "shards": 4, "ops_per_s": 28000.5},
    {"mode": "pipelined", "shards": 1, "ops_per_s": 15090.9},
    {"mode": "pipelined", "shards": 4, "ops_per_s": 45473.9},
    {"mode": "sync-adm", "shards": 8, "ops_per_s": 3000.0, "p50_us": 4000.0, "p99_us": 12000.0, "p999_us": 20000.0}
  ],
  "speedup_4shards": {"sync": 2.568, "pipelined": 3.013}
}"#;

        #[test]
        fn parses_the_snapshot_schema() {
            let cells = parse_snapshot(SAMPLE).unwrap();
            assert_eq!(cells.len(), 5);
            assert_eq!(cells[0].mode, "sync");
            assert_eq!(cells[0].shards, 1);
            assert!((cells[0].ops_per_s - 10000.0).abs() < 1e-9);
            assert_eq!(cells[0].p99_us, None, "throughput-only cell has no SLO");
            assert_eq!(cells[3].mode, "pipelined");
            assert_eq!(cells[3].shards, 4);
            assert!((cells[3].ops_per_s - 45473.9).abs() < 1e-9);
            assert_eq!(cells[4].mode, "sync-adm");
            assert_eq!(cells[4].p99_us, Some(12000.0), "latency cell carries p99");
        }

        #[test]
        fn config_extraction_normalizes_whitespace() {
            let config = parse_config(SAMPLE).unwrap();
            assert_eq!(
                config,
                "\"clients\":64,\"batch\":16,\"store_delay_us\":400,\"rounds\":8"
            );
            // A snapshot measured under different knobs is visibly a
            // different config.
            let other = SAMPLE.replace("\"batch\": 16", "\"batch\": 256");
            assert_ne!(parse_config(&other).unwrap(), config);
            assert!(parse_config("no config here").is_none());
        }

        #[test]
        fn rejects_foreign_documents() {
            assert!(parse_snapshot("{}").is_none());
            assert!(parse_snapshot("not json at all").is_none());
            assert!(
                parse_snapshot(r#"{"schema": "lcm-bench-snapshot/1", "results": []}"#).is_none()
            );
        }

        #[test]
        fn within_band_passes_regression_fails() {
            let baseline = parse_snapshot(SAMPLE).unwrap();
            // 30% down across the board: inside the 40% band.
            let ok: Vec<Cell> = baseline
                .iter()
                .map(|c| Cell {
                    ops_per_s: c.ops_per_s * 0.7,
                    ..c.clone()
                })
                .collect();
            assert!(compare(&baseline, &ok, 0.40).iter().all(|v| !v.failed));

            // One cell collapses to half: that cell fails, others pass.
            let mut bad = ok.clone();
            bad[1].ops_per_s = baseline[1].ops_per_s * 0.5;
            let verdicts = compare(&baseline, &bad, 0.40);
            assert!(verdicts[1].failed);
            assert_eq!(verdicts.iter().filter(|v| v.failed).count(), 1);
        }

        #[test]
        fn p99_regression_fails_within_band_jitter_passes() {
            let baseline = parse_snapshot(SAMPLE).unwrap();
            // Baseline p99 12000 at tolerance 0.40: the ceiling is
            // max(12000 * 1.8, 12000 + 10000) = 22000 µs.
            let v = &compare(&baseline, &baseline, 0.40)[4];
            assert_eq!(v.p99_ceiling, Some(22000.0));

            // Throughput holds but the metered tenant's p99 balloons
            // past the ceiling: the latency cell alone must fail.
            let mut bad = baseline.clone();
            bad[4].p99_us = Some(22500.0);
            let verdicts = compare(&baseline, &bad, 0.40);
            assert!(verdicts[4].failed, "p99 past the ceiling fails");
            assert_eq!(verdicts.iter().filter(|v| v.failed).count(), 1);

            // Batch-alignment jitter inside the band passes.
            let mut ok = baseline.clone();
            ok[4].p99_us = Some(21500.0);
            assert!(compare(&baseline, &ok, 0.40).iter().all(|v| !v.failed));

            // A latency cell that silently loses its p99 field fails
            // rather than passing vacuously.
            let mut gone = baseline.clone();
            gone[4].p99_us = None;
            assert!(compare(&baseline, &gone, 0.40)[4].failed);
        }

        #[test]
        fn missing_cell_fails_and_extra_cell_is_ignored() {
            let baseline = parse_snapshot(SAMPLE).unwrap();
            let mut fresh = baseline.clone();
            fresh.remove(0); // (sync, 1) vanished
            fresh.push(Cell {
                mode: "sync".into(),
                shards: 8,
                ops_per_s: 1.0, // new config, not gated
                p99_us: None,
            });
            let verdicts = compare(&baseline, &fresh, 0.40);
            assert_eq!(verdicts.len(), 5, "one verdict per baseline cell");
            assert!(verdicts[0].failed, "missing cell must fail");
            assert_eq!(verdicts.iter().filter(|v| v.failed).count(), 1);
        }

        #[test]
        fn delta_independence_is_the_large_over_small_ratio() {
            let cell = |mode: &str, ops: f64| Cell {
                mode: mode.into(),
                shards: 1,
                ops_per_s: ops,
                p99_us: None,
            };
            let cells = vec![
                cell("sync", 10_000.0),
                cell(DELTA_SMALL_MODE, 8_000.0),
                cell(DELTA_LARGE_MODE, 6_400.0),
            ];
            let ratio = delta_independence(&cells).unwrap();
            assert!((ratio - 0.8).abs() < 1e-9);
            assert!(ratio >= DELTA_INDEPENDENCE_FLOOR);
            // Either cell missing: no ratio (old snapshots gate
            // nothing, rather than failing spuriously).
            assert!(delta_independence(&cells[..2]).is_none());
            assert!(delta_independence(&[]).is_none());
            // A zeroed cell cannot fabricate a passing (or infinite)
            // ratio.
            let zeroed = vec![cell(DELTA_SMALL_MODE, 0.0), cell(DELTA_LARGE_MODE, 100.0)];
            assert!(delta_independence(&zeroed).is_none());
        }

        #[test]
        fn reshard_recovery_is_per_mode_and_needs_both_cells() {
            let cell = |mode: &str, shards: u32, ops: f64| Cell {
                mode: mode.into(),
                shards,
                ops_per_s: ops,
                p99_us: None,
            };
            let cells = vec![
                cell("sync-hot", 8, 2_500.0),
                cell("sync-reshard", 8, 8_300.0),
                cell("pipelined-hot", 8, 2_800.0),
            ];
            let ratio = reshard_recovery(&cells, "sync").unwrap();
            assert!((ratio - 3.32).abs() < 0.01);
            assert!(ratio >= RESHARD_RECOVERY_FLOOR);
            // The pipelined reshard cell is missing: no ratio, so old
            // baselines gate nothing rather than failing spuriously.
            assert!(reshard_recovery(&cells, "pipelined").is_none());
            // A zeroed hot cell cannot fabricate an infinite ratio.
            let zeroed = vec![cell("sync-hot", 8, 0.0), cell("sync-reshard", 8, 100.0)];
            assert!(reshard_recovery(&zeroed, "sync").is_none());
        }

        #[test]
        fn shard_scaleout_compares_8_to_4_per_mode() {
            let cell = |mode: &str, shards: u32, ops: f64| Cell {
                mode: mode.into(),
                shards,
                ops_per_s: ops,
                p99_us: None,
            };
            let cells = vec![
                cell("sync", 1, 3_400.0),
                cell("sync", 4, 8_900.0),
                cell("sync", 8, 14_200.0),
                cell("pipelined", 4, 10_800.0),
            ];
            let ratio = shard_scaleout(&cells, "sync").unwrap();
            assert!((ratio - 14_200.0 / 8_900.0).abs() < 1e-9);
            assert!(ratio >= SHARD_SCALEOUT_FLOOR);
            assert!(shard_scaleout(&cells, "pipelined").is_none());
            // The flat pre-reshard profile would fail the floor.
            let flat = vec![cell("sync", 4, 27_650.0), cell("sync", 8, 26_625.0)];
            assert!(shard_scaleout(&flat, "sync").unwrap() < SHARD_SCALEOUT_FLOOR);
        }

        #[test]
        fn tolerance_env_parsing_is_defensive() {
            // No env manipulation here (tests run in parallel); check
            // the parse-and-clamp path through compare instead: a 60%
            // drop passes only with a loosened band.
            let baseline = parse_snapshot(SAMPLE).unwrap();
            let fresh: Vec<Cell> = baseline
                .iter()
                .map(|c| Cell {
                    ops_per_s: c.ops_per_s * 0.4,
                    ..c.clone()
                })
                .collect();
            assert!(compare(&baseline, &fresh, 0.40).iter().any(|v| v.failed));
            assert!(compare(&baseline, &fresh, 0.70).iter().all(|v| !v.failed));
        }
    }
}

/// [`write_csv`] for a Fig. 5/6-style per-series client sweep.
pub fn series_csv(name: &str, series: &[lcm_sim::scenario::FigureSeries]) {
    let rows: Vec<Vec<String>> = series
        .iter()
        .flat_map(|s| {
            s.rows
                .iter()
                .map(move |(n, x)| vec![s.label(), n.to_string(), format!("{x:.1}")])
        })
        .collect();
    write_csv(name, &["series", "clients", "ops_per_s"], &rows);
}

/// Real-stack throughput measurement of the sharded multi-enclave
/// server, shared by the shard ablation, the snapshot bin, and the
/// criterion benches.
pub mod shardbench {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use lcm_core::admin::AdminHandle;
    use lcm_core::admission::{AdmissionConfig, HealthSnapshot, TenantConfig, TenantId};
    use lcm_core::client::LcmClient;
    use lcm_core::server::BatchServer;
    use lcm_core::shard::build_sharded;
    use lcm_core::stability::Quorum;
    use lcm_core::types::ClientId;
    use lcm_kvs::ops::KvOp;
    use lcm_kvs::store::KvStore;
    use lcm_storage::{DelayedStorage, DeltaLogStorage, MemoryStorage};
    use lcm_tee::world::TeeWorld;

    /// One measurement configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ShardRun {
        /// Number of server shards.
        pub shards: u32,
        /// Per-shard batch limit.
        pub batch: usize,
        /// Whether each shard persists on a background writer.
        pub pipelined: bool,
        /// Closed-loop client count (each client PUTs its own key, so
        /// keys spread across shards by route hash).
        pub clients: u32,
        /// Full submit-all/process-all rounds to measure.
        pub rounds: u32,
        /// Modelled write+fsync latency per store call.
        pub store_delay: Duration,
        /// Workload skew: this many of the clients write keys owned by
        /// shard 0 (the hot shard); the rest spread by route hash.
        /// `0` is the uniform workload. Skew is where the concurrent
        /// front-end earns its keep: a lock-step driver makes every
        /// client wait for the hot shard's extra batch cycles, while
        /// independent lane drivers keep the cold shards serving.
        pub hot_clients: u32,
    }

    /// The key client `i` writes under `cfg`: pinned to shard 0 for
    /// the first `hot_clients` clients, spread by route hash for the
    /// rest. Shared by the single-driver and front-end measurements so
    /// their cells stay comparable.
    pub fn client_key(cfg: &ShardRun, i: u32) -> Vec<u8> {
        if i < cfg.hot_clients {
            // The i-th key that routes to shard 0.
            return lcm_core::shard::nth_key_routing_to(0, cfg.shards, "hot", i);
        }
        format!("k{i}").into_bytes()
    }

    /// A live sharded KVS stack: server + bootstrapped clients, ready
    /// to run closed-loop rounds.
    pub struct ShardStack {
        server: Box<dyn BatchServer>,
        clients: Vec<LcmClient>,
        keys: Vec<Vec<u8>>,
        payload: Vec<u8>,
    }

    impl ShardStack {
        /// One full round: every client PUTs a 100 B value under its
        /// own key (keys spread across shards by route hash), then all
        /// replies are processed and completed.
        pub fn round(&mut self) {
            use lcm_core::codec::WireCodec;
            for (i, c) in self.clients.iter_mut().enumerate() {
                let op = KvOp::Put(self.keys[i].clone(), self.payload.clone());
                self.server
                    .submit(c.invoke_for::<KvStore>(&op.to_bytes()).unwrap());
            }
            let replies = self.server.process_all().unwrap();
            for (id, wire) in replies {
                let c = self.clients.iter_mut().find(|c| c.id() == id).unwrap();
                c.handle_reply(&wire).unwrap();
            }
        }

        /// Blocks until every persist issued so far is durable.
        pub fn flush(&mut self) {
            self.server.flush_persists().unwrap();
        }

        /// A [`ShardStack::round`] that tolerates live resharding:
        /// replies are handled through `handle_reply_on`, and a client
        /// whose operation came back as a typed redirect (its slice
        /// migrated under a newer routing epoch, which the client has
        /// now adopted) re-invokes the same PUT under the new table
        /// until every client completes. Identical to `round` while no
        /// slices move.
        pub fn round_chasing(&mut self) {
            use lcm_core::client::WriteOutcome;
            use lcm_core::codec::WireCodec;
            let mut pending: Vec<usize> = (0..self.clients.len()).collect();
            while !pending.is_empty() {
                for &i in &pending {
                    let op = KvOp::Put(self.keys[i].clone(), self.payload.clone());
                    let wire = self.clients[i]
                        .invoke_for::<KvStore>(&op.to_bytes())
                        .unwrap();
                    self.server.submit(wire);
                }
                let replies = self.server.process_all().unwrap();
                let mut chasing = Vec::new();
                for (id, wire) in replies {
                    let idx = self.clients.iter().position(|c| c.id() == id).unwrap();
                    match self.clients[idx].handle_reply_on(&wire).unwrap() {
                        (_, WriteOutcome::Done(_)) => {}
                        (_, WriteOutcome::Redirected { .. }) => chasing.push(idx),
                    }
                }
                pending = chasing;
            }
        }

        /// Runs the host-side heat monitor until it declares the load
        /// balanced: each pass runs one chasing round to accrue heat,
        /// drains the per-slice counters, and performs the planned
        /// slice migration live (epoch bump, clients chase redirects
        /// on their next operation). Returns the number of slices
        /// migrated. Bounded by `max_passes` so a pathological planner
        /// cannot spin the measurement forever.
        pub fn rebalance_until_stable(&mut self, max_passes: u32) -> u32 {
            use lcm_core::routing::SliceTable;
            use lcm_core::shard::plan_rebalance;
            let shards = self.clients[0].slice_table().count();
            assert_eq!(
                self.server.routing_epoch(),
                0,
                "rebalance_until_stable mirrors the table from genesis"
            );
            let mut table = SliceTable::uniform(shards);
            let mut moves = 0;
            for _ in 0..max_passes {
                self.round_chasing();
                let heat = self.server.take_slice_heat();
                let Some((slice, to)) = plan_rebalance(&heat, &table) else {
                    break;
                };
                self.server.migrate_slice(slice, to).unwrap();
                table = table.moved(slice, to).expect("planned move is in range");
                moves += 1;
            }
            moves
        }
    }

    /// Builds the sharded KVS stack for `cfg` (booted, provisioned,
    /// clients attached).
    pub fn setup(cfg: &ShardRun) -> ShardStack {
        let world = TeeWorld::new_deterministic(8_800 + u64::from(cfg.shards));
        let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), cfg.store_delay));
        let mut server: Box<dyn BatchServer> = Box::new(build_sharded::<KvStore>(
            &world,
            1,
            storage,
            cfg.batch,
            cfg.shards,
            cfg.pipelined,
        ));
        assert!(server.boot().unwrap());
        let ids: Vec<ClientId> = (1..=cfg.clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 13);
        admin.bootstrap(&mut server).unwrap();
        let clients = ids
            .iter()
            .map(|&id| LcmClient::new_sharded(id, admin.client_key(), cfg.shards))
            .collect();
        let keys = (0..cfg.clients).map(|i| client_key(cfg, i)).collect();
        ShardStack {
            server,
            clients,
            keys,
            payload: vec![0x42u8; 100],
        }
    }

    /// Builds the stack and measures ops/s over the configured rounds
    /// (including a final persistence flush).
    pub fn measure(cfg: &ShardRun) -> f64 {
        let mut stack = setup(cfg);
        let t0 = Instant::now();
        for _ in 0..cfg.rounds {
            stack.round();
        }
        stack.flush();
        f64::from(cfg.clients * cfg.rounds) / t0.elapsed().as_secs_f64()
    }

    /// Time-bounded [`measure`]: runs whole submit-all/process-all
    /// rounds until `window` has elapsed and reports ops/s over the
    /// actual elapsed time. This is the single-driver cell of the
    /// front-end comparison — under a skewed workload every round
    /// lasts as long as the hot shard's batch backlog, and the cold
    /// shards' clients are barred from submitting again until the
    /// whole round completes.
    pub fn measure_for(cfg: &ShardRun, window: Duration) -> f64 {
        let mut stack = setup(cfg);
        let mut ops = 0u64;
        let t0 = Instant::now();
        while t0.elapsed() < window {
            stack.round();
            ops += u64::from(cfg.clients);
        }
        stack.flush();
        ops as f64 / t0.elapsed().as_secs_f64()
    }

    /// The `*-reshard` cell: the identical skewed workload and
    /// deployment as [`measure_for`]'s `*-hot` cell, but with the
    /// heat-aware rebalancer run first. The warm-up phase lets the
    /// host-side heat monitor migrate the hot shard's slices across
    /// the cold shards live (attested migration tickets, epoch bumps,
    /// clients chasing typed redirects); the timed window then
    /// measures the same single-driver rounds over the rebalanced
    /// table. The tracked signal is the recovery ratio
    /// `*-reshard / *-hot` — the throughput the epoch-versioned
    /// router claws back from the hot-shard collapse at the root,
    /// rather than mitigating it in front (compare `*-fe`/`*-adm`).
    pub fn measure_resharded(cfg: &ShardRun, window: Duration) -> f64 {
        let mut stack = setup(cfg);
        // One pass per slice is a generous bound: the planner moves at
        // most one slice per pass and stops once the hottest shard is
        // within 2x of the coldest.
        stack.rebalance_until_stable(64);
        let mut ops = 0u64;
        let t0 = Instant::now();
        while t0.elapsed() < window {
            stack.round_chasing();
            ops += u64::from(cfg.clients);
        }
        stack.flush();
        ops as f64 / t0.elapsed().as_secs_f64()
    }

    /// The same workload as [`measure`], driven through the concurrent
    /// transport front-end: the deployment sits behind
    /// `lcm_core::transport::Frontend` with `driver_threads` lane
    /// drivers, and every client runs its own closed loop on its own
    /// OS thread through a `FrontendPort` — independent clients
    /// submitting from independent threads, no global round barrier.
    ///
    /// The single-driver [`measure`] waits for the *slowest* shard's
    /// full backlog before any client may continue; here each shard
    /// serves its own clients at its own pace, which is what lets a
    /// deployment whose hot shard needs several batch cycles per round
    /// keep the other shards busy meanwhile.
    pub fn measure_frontend(cfg: &ShardRun, driver_threads: usize) -> f64 {
        measure_frontend_debug(cfg, driver_threads).0
    }

    /// [`measure_frontend`] plus the deployment's `(ops, batches)`
    /// counters — how well the front-end's batch forming amortized the
    /// seal-and-store cycles.
    pub fn measure_frontend_debug(cfg: &ShardRun, driver_threads: usize) -> (f64, u64, u64) {
        measure_frontend_tuned(cfg, driver_threads, lcm_core::transport::BATCH_LINGER)
    }

    /// [`measure_frontend_debug`] with an explicit batch-forming
    /// linger.
    pub fn measure_frontend_tuned(
        cfg: &ShardRun,
        driver_threads: usize,
        linger: std::time::Duration,
    ) -> (f64, u64, u64) {
        let out = run_frontend(cfg, driver_threads, linger, FeRun::Rounds(cfg.rounds), None);
        (out.ops_per_s, out.ops_processed, out.batches_processed)
    }

    /// Time-bounded front-end measurement (the counterpart of
    /// [`measure_for`]): every client loops until `window` elapses,
    /// entirely at its own shard's pace. Under a skewed workload the
    /// cold shards' clients keep completing operations while the hot
    /// shard works through its backlog — the throughput the
    /// single-driver barrier gives up.
    pub fn measure_frontend_for(cfg: &ShardRun, driver_threads: usize, window: Duration) -> f64 {
        run_frontend(
            cfg,
            driver_threads,
            lcm_core::transport::BATCH_LINGER,
            FeRun::Window(window),
            None,
        )
        .ops_per_s
    }

    /// Tenant id the admitted skewed cell assigns the hot-shard
    /// hammerers (rate-capped, low weight).
    pub const HOT_TENANT: TenantId = TenantId(1);
    /// Tenant id of the well-behaved clients whose tail latency the
    /// `*-adm` cells track as the SLO signal.
    pub const COLD_TENANT: TenantId = TenantId(2);

    /// The admission policy the `*-adm` snapshot cells run under:
    /// the first `hot_clients` clients (the ones hammering shard 0)
    /// form a metered low-weight tenant, everyone else an unmetered
    /// high-weight tenant. With the hot tenant's token bucket capping
    /// its ingress, the cold tenant's p99 recovers to its own shard's
    /// service time instead of queueing behind the hot backlog.
    pub fn admitted_policy(cfg: &ShardRun) -> AdmissionConfig {
        let hot_ids: Vec<ClientId> = (1..=cfg.hot_clients).map(ClientId).collect();
        let cold_ids: Vec<ClientId> = (cfg.hot_clients + 1..=cfg.clients).map(ClientId).collect();
        AdmissionConfig {
            tenants: vec![
                TenantConfig::metered(HOT_TENANT, hot_ids, 400.0, 16, 1),
                TenantConfig::unlimited(COLD_TENANT, cold_ids, 4),
            ],
            max_in_flight: 64,
        }
    }

    /// The key client `i` writes in the admitted cell: hot clients on
    /// shard 0 as in [`client_key`], cold clients round-robined over
    /// the *other* shards. The `*-adm` latency SLO tracks what the
    /// admission layer actually controls — the metered tenant's tail
    /// on its own shards under hot-tenant ingress pressure. A cold
    /// client route-hashed onto the hot shard would instead measure
    /// shard co-location (the hot backlog ahead of it in the batch
    /// queue), which admission cannot bound and which is wall-clock
    /// noisy.
    pub fn admitted_client_key(cfg: &ShardRun, i: u32) -> Vec<u8> {
        if i < cfg.hot_clients || cfg.shards < 2 {
            return client_key(cfg, i);
        }
        let shard = 1 + (i - cfg.hot_clients) % (cfg.shards - 1);
        lcm_core::shard::nth_key_routing_to(shard, cfg.shards, "cold", i)
    }

    /// The skewed front-end workload of [`measure_frontend_for`], run
    /// with the [`admitted_policy`] installed at the front door and
    /// the [`admitted_client_key`] layout. Returns overall ops/s plus
    /// the per-tenant × shard health snapshot, whose cold-tenant p99
    /// is the latency SLO recorded in `BENCH_pipeline.json` and gated
    /// by `bench_gate`.
    pub fn measure_frontend_admitted(
        cfg: &ShardRun,
        driver_threads: usize,
        window: Duration,
    ) -> (f64, Option<HealthSnapshot>) {
        let out = run_frontend(
            cfg,
            driver_threads,
            lcm_core::transport::BATCH_LINGER,
            FeRun::Window(window),
            Some(admitted_policy(cfg)),
        );
        (out.ops_per_s, out.health)
    }

    /// One sealed-delta-log measurement configuration: a single shard
    /// persisting through `DeltaLogStorage`, preloaded with `preload`
    /// synthetic records before the timed window.
    #[derive(Debug, Clone, Copy)]
    pub struct DeltaRun {
        /// Records bulk-loaded (one [`KvOp::Fill`] invocation) before
        /// the clock starts.
        pub preload: u32,
        /// Batch limit of the single shard.
        pub batch: usize,
        /// Closed-loop client count.
        pub clients: u32,
        /// Timed submit-all/process-all rounds.
        pub rounds: u32,
        /// Modelled write+fsync latency per store call.
        pub store_delay: Duration,
    }

    /// Write ops/s of the KVS stack persisting through the sealed
    /// delta-log engine. The tracked signal is the *ratio* between a
    /// large-`preload` cell and a small one (`delta-1M` over
    /// `delta-small` in the snapshot): each group commit seals a
    /// batch-shaped diff, never the resident state, so the ratio must
    /// stay near 1 where full-state sealing collapses by orders of
    /// magnitude. The preload itself — one oversized delta, then the
    /// compaction checkpoint it forces on the *following* persist —
    /// runs before the clock starts (the warm-up round flushes the
    /// deferred checkpoint).
    pub fn measure_delta(cfg: &DeltaRun) -> f64 {
        use lcm_core::codec::WireCodec;
        let world = TeeWorld::new_deterministic(8_600 + u64::from(cfg.preload));
        let disk = Arc::new(DelayedStorage::new(MemoryStorage::new(), cfg.store_delay));
        let engine = Arc::new(DeltaLogStorage::open(disk).expect("engine opens on empty storage"));
        let mut server: Box<dyn BatchServer> = Box::new(build_sharded::<KvStore>(
            &world, 1, engine, cfg.batch, 1, false,
        ));
        assert!(server.boot().unwrap());
        let ids: Vec<ClientId> = (1..=cfg.clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 13);
        admin.bootstrap(&mut server).unwrap();
        let mut clients: Vec<LcmClient> = ids
            .iter()
            .map(|&id| LcmClient::new_sharded(id, admin.client_key(), 1))
            .collect();

        let round = |server: &mut Box<dyn BatchServer>, clients: &mut Vec<LcmClient>, tag: u32| {
            for (i, c) in clients.iter_mut().enumerate() {
                // Fresh keys each round keep every delta the same
                // shape; "w"-prefixed keys cannot collide with the
                // hex keys [`KvOp::Fill`] lays down.
                let op = KvOp::Put(format!("w{i}-{tag}").into_bytes(), vec![0x42u8; 100]);
                server.submit(c.invoke_for::<KvStore>(&op.to_bytes()).unwrap());
            }
            for (id, wire) in server.process_all().unwrap() {
                let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
                c.handle_reply(&wire).unwrap();
            }
        };

        if cfg.preload > 0 {
            let fill = KvOp::Fill {
                pin: b"fill".to_vec(),
                start: 0,
                count: cfg.preload,
                value_len: 100,
            };
            server.submit(clients[0].invoke_for::<KvStore>(&fill.to_bytes()).unwrap());
            for (id, wire) in server.process_all().unwrap() {
                let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
                c.handle_reply(&wire).unwrap();
            }
        }
        // Warm-up round: flush the preload's deferred compaction
        // checkpoint outside the measurement.
        round(&mut server, &mut clients, cfg.rounds);

        let t0 = Instant::now();
        for r in 0..cfg.rounds {
            round(&mut server, &mut clients, r);
        }
        server.flush_persists().unwrap();
        f64::from(cfg.clients * cfg.rounds) / t0.elapsed().as_secs_f64()
    }

    /// One replicated-group measurement configuration: a single shard
    /// run as a `2f + 1` replica group, so the recorded deltas are
    /// purely the replication protocol's (no shard fan-out in the
    /// same cell).
    #[derive(Debug, Clone, Copy)]
    pub struct ReplicaRun {
        /// Members in the group (1 = unreplicated control).
        pub replicas: u32,
        /// Per-member batch limit.
        pub batch: usize,
        /// Closed-loop writer clients (doubling as reader identities in
        /// the read cell).
        pub clients: u32,
        /// Full submit-all/process-all rounds for the write cell.
        pub rounds: u32,
        /// Modelled write+fsync latency per store call — paid once by
        /// the leader and once per follower apply, which is exactly the
        /// write cost the `rep-write-*` cells track.
        pub store_delay: Duration,
        /// Modelled enclave-transition cost per ecall
        /// ([`lcm_tee::platform::TeePlatform::set_ecall_cost`]).
        /// Every call into a member's enclave — a batch execution, a
        /// follower apply, a verified read — occupies that member for
        /// this long, the same way [`DelayedStorage`] makes the disk
        /// the write bottleneck. It is what the `rep-read-*` cells
        /// scale against: reads pinned to distinct members overlap
        /// their service time, reads to one member serialize it.
        pub ecall_cost: Duration,
    }

    fn setup_replicated(cfg: &ReplicaRun) -> (Box<dyn BatchServer>, Vec<LcmClient>) {
        use lcm_core::shard::{build_replicated, ReplicationSpec};
        let world = TeeWorld::new_deterministic(8_700 + u64::from(cfg.replicas));
        world.set_ecall_cost(cfg.ecall_cost);
        let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), cfg.store_delay));
        let spec = ReplicationSpec {
            shards: 1,
            replicas: cfg.replicas,
            quorum: Quorum::Majority,
        };
        let mut server: Box<dyn BatchServer> = Box::new(build_replicated::<KvStore>(
            &world, 1, storage, cfg.batch, spec, false,
        ));
        assert!(server.boot().unwrap());
        let ids: Vec<ClientId> = (1..=cfg.clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 13);
        admin.bootstrap(&mut server).unwrap();
        let clients = ids
            .iter()
            .map(|&id| LcmClient::new_sharded(id, admin.client_key(), 1))
            .collect();
        (server, clients)
    }

    /// Write ops/s of the replica group: every acknowledged write
    /// waits for the majority quorum, so each batch pays the leader's
    /// store plus `replicas - 1` follower applies (each persisting its
    /// own sealed copy through the delayed device).
    pub fn measure_replicated_write(cfg: &ReplicaRun) -> f64 {
        use lcm_core::codec::WireCodec;
        let (mut server, mut clients) = setup_replicated(cfg);
        let payload = vec![0x42u8; 100];
        let t0 = Instant::now();
        for _ in 0..cfg.rounds {
            for (i, c) in clients.iter_mut().enumerate() {
                let op = KvOp::Put(format!("k{i}").into_bytes(), payload.clone());
                server.submit(c.invoke_for::<KvStore>(&op.to_bytes()).unwrap());
            }
            let replies = server.process_all().unwrap();
            for (id, wire) in replies {
                let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
                c.handle_reply(&wire).unwrap();
            }
        }
        server.flush_persists().unwrap();
        f64::from(cfg.clients * cfg.rounds) / t0.elapsed().as_secs_f64()
    }

    /// Verified-read ops/s of the replica group over `window`:
    /// `readers` threads hammer the group's lock-per-member
    /// `ReadPort`, each pinning its read legs to replica
    /// `i % replicas`. At one replica every read serializes on the
    /// sole member's lock; at three, three members decrypt, execute,
    /// and seal read replies in parallel — the follower-read
    /// scale-out the `rep-read-*` cells track.
    pub fn measure_replicated_reads(cfg: &ReplicaRun, readers: u32, window: Duration) -> f64 {
        use lcm_core::client::ReadOutcome;
        use lcm_core::codec::WireCodec;
        assert!(cfg.clients >= readers);
        let (mut server, clients) = setup_replicated(cfg);
        let payload = vec![0x42u8; 100];
        // Warm up: every reader owns one key, written through the
        // quorum so every member's state contains it before reads
        // start.
        let mut clients: Vec<LcmClient> = clients.into_iter().take(readers as usize).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            let op = KvOp::Put(format!("k{i}").into_bytes(), payload.clone());
            server.submit(c.invoke_for::<KvStore>(&op.to_bytes()).unwrap());
        }
        for (id, wire) in server.process_all().unwrap() {
            let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
            c.handle_reply(&wire).unwrap();
        }
        server.flush_persists().unwrap();

        let port = server
            .read_port()
            .expect("replica groups expose a read port");
        let replicas = cfg.replicas;
        let deadline = Instant::now() + window;
        let t0 = Instant::now();
        let workers: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, mut client)| {
                let port = Arc::clone(&port);
                let replica = i as u32 % replicas;
                let op = KvOp::Get(format!("k{i}").into_bytes()).to_bytes();
                std::thread::spawn(move || {
                    let mut done = 0u64;
                    while Instant::now() < deadline {
                        let wire = client.read_for::<KvStore>(&op, replica).unwrap();
                        let reply = port.serve_read(wire).unwrap();
                        match client.handle_read_reply(&reply).unwrap() {
                            ReadOutcome::Fresh(_) => done += 1,
                            // A member still applying the warm-up blob:
                            // retryable lag, not a counted read. No
                            // slices move in this workload, so Moved
                            // never fires; treat it as uncounted too.
                            ReadOutcome::Behind | ReadOutcome::Moved => {}
                        }
                    }
                    done
                })
            })
            .collect();
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        total as f64 / t0.elapsed().as_secs_f64()
    }

    enum FeRun {
        Rounds(u32),
        Window(Duration),
    }

    struct FeOutcome {
        ops_per_s: f64,
        ops_processed: u64,
        batches_processed: u64,
        health: Option<HealthSnapshot>,
    }

    fn run_frontend(
        cfg: &ShardRun,
        driver_threads: usize,
        linger: std::time::Duration,
        run: FeRun,
        admission: Option<AdmissionConfig>,
    ) -> FeOutcome {
        use lcm_core::codec::WireCodec;
        use lcm_core::transport::{DriveMode, Frontend};

        let world = TeeWorld::new_deterministic(8_900 + u64::from(cfg.shards));
        let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), cfg.store_delay));
        let server =
            build_sharded::<KvStore>(&world, 1, storage, cfg.batch, cfg.shards, cfg.pipelined);
        let admitted = admission.is_some();
        if let Some(config) = admission {
            server.configure_admission(config);
        }
        let mut fe =
            Frontend::new(server, driver_threads, DriveMode::Continuous).expect("sharded plane");
        fe.set_linger(linger);
        assert!(fe.boot().unwrap());
        let ids: Vec<ClientId> = (1..=cfg.clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 13);
        admin.bootstrap(&mut fe).unwrap();

        let payload = vec![0x42u8; 100];
        let (rounds, deadline) = match run {
            FeRun::Rounds(r) => (Some(r), None),
            FeRun::Window(w) => (None, Some(Instant::now() + w)),
        };
        let t0 = Instant::now();
        let workers: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut client = LcmClient::new_sharded(id, admin.client_key(), cfg.shards);
                let port = fe.connect(id);
                let payload = payload.clone();
                let key = if admitted {
                    admitted_client_key(cfg, i as u32)
                } else {
                    client_key(cfg, i as u32)
                };
                std::thread::spawn(move || {
                    let mut done = 0u64;
                    loop {
                        match (rounds, deadline) {
                            (Some(r), _) if done >= u64::from(r) => break,
                            (_, Some(d)) if Instant::now() >= d => break,
                            _ => {}
                        }
                        let op = KvOp::Put(key.clone(), payload.clone());
                        port.send(client.invoke_for::<KvStore>(&op.to_bytes()).unwrap());
                        let reply = port
                            .recv_timeout(std::time::Duration::from_secs(60))
                            .expect("closed-loop reply");
                        client.handle_reply(&reply).unwrap();
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        let elapsed = t0.elapsed();
        fe.flush_persists().unwrap();
        let ops = total as f64 / elapsed.as_secs_f64();
        if std::env::var("LCM_FE_DEBUG").is_ok() {
            for s in fe.server().shard_stats() {
                eprintln!(
                    "  lane {}: ops={} batches={} avg={:.1}",
                    s.shard,
                    s.ops,
                    s.batches,
                    s.ops as f64 / s.batches.max(1) as f64
                );
            }
        }
        FeOutcome {
            ops_per_s: ops,
            ops_processed: fe.ops_processed(),
            batches_processed: fe.batches_processed(),
            health: fe.health_snapshot(),
        }
    }
}
