//! Criterion benches for the execution pipeline: synchronous loop vs
//! asynchronous-write `PipelinedServer` under identical storage cost,
//! plus the fsync-batching file-backed AOF baseline.
//!
//! The acceptance bar for the pipeline: at batch=16 the async-write
//! mode must sustain at least the synchronous loop's throughput — the
//! store cost leaves the execution path.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcm_core::admin::AdminHandle;
use lcm_core::client::LcmClient;
use lcm_core::pipeline::PipelinedServer;
use lcm_core::server::{BatchServer, LcmServer};
use lcm_core::stability::Quorum;
use lcm_core::types::ClientId;
use lcm_kvs::baseline::{FileAofKvsServer, FsyncPolicy};
use lcm_kvs::ops::KvOp;
use lcm_kvs::store::KvStore;
use lcm_storage::{DelayedStorage, MemoryStorage};
use lcm_tee::world::TeeWorld;

const N_CLIENTS: u32 = 16;
/// Modelled write+fsync latency per store call.
const STORE_DELAY: Duration = Duration::from_micros(100);

fn setup(batch: usize, pipelined: bool, seed: u64) -> (Box<dyn BatchServer>, Vec<LcmClient>) {
    let world = TeeWorld::new_deterministic(seed);
    let platform = world.platform_deterministic(1);
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let inner = LcmServer::<KvStore>::new(&platform, storage, batch);
    let mut server: Box<dyn BatchServer> = if pipelined {
        Box::new(PipelinedServer::new(inner))
    } else {
        Box::new(inner)
    };
    server.boot().unwrap();
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let clients = ids
        .iter()
        .map(|&id| LcmClient::new(id, admin.client_key()))
        .collect();
    (server, clients)
}

/// One full round: every client submits one 100 B put, the server
/// processes the queue as batches, replies complete.
fn round(server: &mut Box<dyn BatchServer>, clients: &mut [LcmClient], payload: &[u8]) {
    for c in clients.iter_mut() {
        let op = KvOp::Put(b"bench-key".to_vec(), payload.to_vec());
        use lcm_core::codec::WireCodec;
        server.submit(c.invoke(&op.to_bytes()).unwrap());
    }
    let replies = server.process_all().unwrap();
    for (id, wire) in replies {
        let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
        c.handle_reply(&wire).unwrap();
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let payload = vec![0xa5u8; 100];
    let mut group = c.benchmark_group("pipeline_batch16");
    group.throughput(Throughput::Elements(N_CLIENTS as u64));

    group.bench_function(BenchmarkId::from_parameter("sync_write"), |b| {
        let (mut server, mut clients) = setup(16, false, 70);
        b.iter(|| round(&mut server, &mut clients, &payload));
    });

    group.bench_function(BenchmarkId::from_parameter("async_write"), |b| {
        let (mut server, mut clients) = setup(16, true, 70);
        b.iter(|| round(&mut server, &mut clients, &payload));
        server.flush_persists().unwrap();
    });

    group.finish();
}

fn bench_aof(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lcm-bench-aof-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("aof_put_100B");
    for (name, policy) in [
        ("fsync_every_op", FsyncPolicy::EveryOp),
        ("group_commit_16", FsyncPolicy::EveryN(16)),
        ("no_fsync", FsyncPolicy::Never),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut server =
                FileAofKvsServer::open(dir.join(format!("{name}.aof")), policy).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                server
                    .handle(&KvOp::Put(b"key".to_vec(), i.to_be_bytes().to_vec()))
                    .unwrap()
            });
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharded stage 2: one round of 64 clients PUTting their own keys
/// (spread across shards by route hash) per iteration, at 1 vs 4
/// shards under identical storage cost. The single-shard server needs
/// four serial seal-and-store cycles per round where four shards need
/// one each, in parallel — the stage-2 speedup the sharded host
/// exists for.
fn bench_sharded(c: &mut Criterion) {
    use lcm_bench::shardbench::{setup, ShardRun};

    const SHARD_CLIENTS: u32 = 64;

    let mut group = c.benchmark_group("sharded_stage2");
    group.throughput(Throughput::Elements(u64::from(SHARD_CLIENTS)));
    for shards in [1u32, 4] {
        let mut stack = setup(&ShardRun {
            shards,
            batch: 16,
            pipelined: false,
            clients: SHARD_CLIENTS,
            rounds: 0, // driven by criterion below
            store_delay: Duration::from_micros(400),
            hot_clients: 0,
        });
        group.bench_function(
            BenchmarkId::from_parameter(format!("shards_{shards}")),
            |b| b.iter(|| stack.round()),
        );
        stack.flush();
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_aof, bench_sharded);
criterion_main!(benches);
