//! Criterion benches comparing the real in-process servers: LCM vs the
//! SGX baseline vs native — wall-clock per-operation cost of the
//! actual implementations (complements the calibrated simulator).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcm_core::admin::AdminHandle;
use lcm_core::server::LcmServer;
use lcm_core::stability::Quorum;
use lcm_core::types::ClientId;
use lcm_kvs::baseline::{NativeKvsServer, SecureKvsClient, SgxKvsServer};
use lcm_kvs::client::KvsClient;
use lcm_kvs::ops::KvOp;
use lcm_kvs::store::KvStore;
use lcm_storage::MemoryStorage;
use lcm_tee::world::TeeWorld;

fn bench_servers(c: &mut Criterion) {
    let mut group = c.benchmark_group("put_100B");

    // Native (no protection).
    group.bench_function(BenchmarkId::from_parameter("native"), |b| {
        let mut server = NativeKvsServer::new(Arc::new(MemoryStorage::new()));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            server.handle(&KvOp::Put(b"key".to_vec(), i.to_be_bytes().to_vec()))
        });
    });

    // SGX baseline (sealing, no LCM).
    group.bench_function(BenchmarkId::from_parameter("sgx"), |b| {
        let world = TeeWorld::new_deterministic(81);
        let platform = world.platform_deterministic(1);
        let mut server = SgxKvsServer::new(&platform, Arc::new(MemoryStorage::new()), 1);
        server.boot().unwrap();
        let client = SecureKvsClient::new(SgxKvsServer::session_key_for(&platform));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            client
                .run(
                    &mut server,
                    &KvOp::Put(b"key".to_vec(), i.to_be_bytes().to_vec()),
                )
                .unwrap()
        });
    });

    // LCM (full protocol).
    group.bench_function(BenchmarkId::from_parameter("lcm"), |b| {
        let world = TeeWorld::new_deterministic(82);
        let platform = world.platform_deterministic(1);
        let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), 1);
        server.boot().unwrap();
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 1);
        admin.bootstrap(&mut server).unwrap();
        let mut client = KvsClient::new(ClientId(1), admin.client_key());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            client
                .run(
                    &mut server,
                    &KvOp::Put(b"key".to_vec(), i.to_be_bytes().to_vec()),
                )
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_servers);
criterion_main!(benches);
