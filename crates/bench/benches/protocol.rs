//! Criterion microbenches for the LCM protocol path: client-side
//! invoke/complete and the trusted context's full Alg. 2 step.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcm_core::admin::AdminHandle;
use lcm_core::server::LcmServer;
use lcm_core::stability::{majority_stable, VEntry, VMap};
use lcm_core::types::{ChainValue, ClientId, SeqNo};
use lcm_kvs::client::KvsClient;
use lcm_kvs::ops::KvOp;
use lcm_kvs::store::KvStore;
use lcm_storage::MemoryStorage;
use lcm_tee::world::TeeWorld;

fn setup(batch: usize) -> (LcmServer<KvStore>, KvsClient) {
    let world = TeeWorld::new_deterministic(77);
    let platform = world.platform_deterministic(1);
    let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), batch);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(
        &world,
        vec![ClientId(1)],
        lcm_core::stability::Quorum::Majority,
        1,
    );
    admin.bootstrap(&mut server).unwrap();
    let client = KvsClient::new(ClientId(1), admin.client_key());
    (server, client)
}

fn bench_full_operation(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_op_roundtrip");
    for (label, batch) in [("unbatched", 1usize), ("batch16", 16)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let (mut server, mut client) = setup(batch);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                client
                    .run(
                        &mut server,
                        &KvOp::Put(b"bench-key".to_vec(), i.to_be_bytes().to_vec()),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_client_invoke_encoding(c: &mut Criterion) {
    // Client-side cost alone: AEAD + wire encoding per invoke.
    let world = TeeWorld::new_deterministic(78);
    let _ = world;
    let key = lcm_crypto::keys::SecretKey::from_bytes([9u8; 32]);
    c.bench_function("client_invoke_encode_145B", |b| {
        let mut client = lcm_core::client::LcmClient::new(ClientId(1), &key);
        let op = vec![0u8; 145];
        b.iter(|| {
            let wire = client.invoke(&op).unwrap();
            // Reset the pending op without a server.
            let _ = wire;
            reset(&mut client, &key);
        });
    });

    fn reset(client: &mut lcm_core::client::LcmClient, key: &lcm_crypto::keys::SecretKey) {
        *client = lcm_core::client::LcmClient::new(ClientId(1), key);
    }
}

fn bench_majority_stable(c: &mut Criterion) {
    let mut group = c.benchmark_group("majority_stable");
    for n in [4usize, 16, 64, 256] {
        let v: VMap = (0..n as u32)
            .map(|i| {
                (
                    ClientId(i),
                    VEntry {
                        ta: SeqNo(u64::from(i)),
                        t: SeqNo(u64::from(i) + 3),
                        h: ChainValue::GENESIS,
                        cached: None,
                    },
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| majority_stable(v));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_operation,
    bench_client_invoke_encoding,
    bench_majority_stable
);
criterion_main!(benches);
