//! Criterion microbenches for the cryptographic substrate.
//!
//! These ground the simulator's cost constants: per-byte AEAD and hash
//! throughput on the build machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::hmac::hmac_sha256;
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 256, 1024, 16 * 1024, 256 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256::digest(data));
        });
    }
    group.finish();
}

fn bench_hash_chain_step(c: &mut Criterion) {
    // The exact LCM chain step: hash(h ‖ o ‖ t ‖ i) with a 145 B op.
    let h = sha256::digest(b"previous");
    let op = vec![0u8; 145];
    c.bench_function("hash_chain_step_145B_op", |b| {
        b.iter(|| {
            sha256::digest_parts(&[h.as_bytes(), &op, &7u64.to_be_bytes(), &3u32.to_be_bytes()])
        });
    });
}

fn bench_aead(c: &mut Criterion) {
    let key = AeadKey::from_secret(&SecretKey::from_bytes([7u8; 32]));
    let mut group = c.benchmark_group("aead");
    for size in [145usize, 1024, 16 * 1024, 328 * 1024] {
        let data = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encrypt", size), &data, |b, data| {
            b.iter(|| aead::auth_encrypt(&key, data, b"lcm.invoke").unwrap());
        });
        let sealed = aead::auth_encrypt(&key, &data, b"lcm.invoke").unwrap();
        group.bench_with_input(BenchmarkId::new("decrypt", size), &sealed, |b, sealed| {
            b.iter(|| aead::auth_decrypt(&key, sealed, b"lcm.invoke").unwrap());
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("hmac_sha256_1KiB", |b| {
        b.iter(|| hmac_sha256(b"key", &data));
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hash_chain_step,
    bench_aead,
    bench_hmac
);
criterion_main!(benches);
