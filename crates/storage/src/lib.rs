//! Stable storage substrate for the LCM reproduction.
//!
//! The paper's system model (§2.1) gives the server — and only the
//! server — access to *stable storage* through `load` and `store`. The
//! trusted execution context must persist its sealed state through this
//! channel, and a **malicious server may return any correctly-sealed
//! but outdated blob** (a rollback attack) or serve different blobs to
//! different enclave instances (a forking attack).
//!
//! This crate provides:
//!
//! * [`StableStorage`] — the `load`/`store` trait both honest and
//!   malicious servers implement;
//! * [`MemoryStorage`] — an honest in-memory store;
//! * [`FileStorage`] — an honest file-backed store (for examples that
//!   survive process restarts);
//! * [`DelayedStorage`] — an honest wrapper charging wall-clock device
//!   latency per operation, for real-concurrency experiments;
//! * [`VersionedStorage`] — retains every version ever stored, the
//!   building block for adversarial behaviour;
//! * [`RollbackStorage`] — an adversarial wrapper that can be switched
//!   at runtime between honest operation, serving stale versions,
//!   silently dropping writes, and freezing;
//! * [`ForkView`] — per-branch views over one history, used to feed
//!   divergent states to multiple enclave instances;
//! * [`DiskModel`] — the fsync/throughput cost model used by the
//!   discrete-event simulator for the paper's sync-vs-async experiments
//!   (Fig. 5 vs Fig. 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod delayed;
mod deltalog;
mod disk;
mod error;
mod file;
mod flaky;
pub mod framing;
mod memory;
mod namespace;
mod versioned;

pub use adversary::{AdversaryMode, ForkView, RollbackStorage};
pub use delayed::DelayedStorage;
pub use deltalog::{
    make_bundle, parse_bundle, DeltaLogConfig, DeltaLogStats, DeltaLogStorage, BLOB_KIND_BUNDLE,
    BLOB_KIND_CHECKPOINT, BLOB_KIND_DELTA, BLOB_KIND_OPAQUE,
};
pub use disk::DiskModel;
pub use error::StorageError;
pub use file::FileStorage;
pub use flaky::{FailureMode, FlakyStorage};
pub use memory::MemoryStorage;
pub use namespace::NamespacedStorage;
pub use versioned::{Version, VersionedStorage};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// The `load`/`store` interface of the paper's system model.
///
/// Implementations may be honest (always return the most recent blob)
/// or adversarial (return stale or divergent blobs). The trusted
/// execution context must treat whatever `load` returns as untrusted:
/// integrity comes from the seal, freshness cannot come from storage at
/// all — that is the gap LCM closes.
pub trait StableStorage: Send + Sync {
    /// Persists `blob` under `slot`, replacing the visible version.
    ///
    /// # Errors
    ///
    /// Implementations may fail on I/O errors; adversarial
    /// implementations may silently drop the write instead (that is not
    /// an error — the caller cannot tell).
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()>;

    /// Loads the blob currently visible under `slot`, or `None` if the
    /// slot was never stored.
    ///
    /// # Errors
    ///
    /// Implementations may fail on I/O errors.
    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>>;

    /// Whether this store understands the sealed delta-log blob kinds
    /// ([`DeltaLogStorage`]): if `true`, a server booting on it asks
    /// its enclave to emit per-batch deltas instead of whole-state
    /// snapshots. Honest and adversarial wrappers forward this;
    /// plain blob stores keep the default `false`.
    fn delta_capable(&self) -> bool {
        false
    }
}

impl<T: StableStorage + ?Sized> StableStorage for std::sync::Arc<T> {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        (**self).store(slot, blob)
    }
    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        (**self).load(slot)
    }
    fn delta_capable(&self) -> bool {
        (**self).delta_capable()
    }
}
