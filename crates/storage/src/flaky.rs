//! Failure-injecting storage: transient I/O errors.
//!
//! Distinct from [`crate::RollbackStorage`]: a *crashing or flaky* disk
//! is a benign fault the correct server must surface as an error (and
//! possibly retry), whereas the adversarial wrappers simulate a host
//! that lies successfully. Tests use this to verify error propagation
//! paths that never involve the protocol's violation machinery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Result, StableStorage, StorageError};

/// Which operations fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// All operations succeed.
    None,
    /// Every `store` fails.
    FailStores,
    /// Every `load` fails.
    FailLoads,
    /// Every operation fails.
    FailAll,
}

/// A wrapper injecting I/O errors according to a [`FailureMode`].
#[derive(Debug, Clone)]
pub struct FlakyStorage<S> {
    inner: S,
    mode: Arc<parking_lot::RwLock<FailureMode>>,
    failures: Arc<AtomicU64>,
}

impl<S: StableStorage> FlakyStorage<S> {
    /// Wraps `inner`, starting with no failures.
    pub fn new(inner: S) -> Self {
        FlakyStorage {
            inner,
            mode: Arc::new(parking_lot::RwLock::new(FailureMode::None)),
            failures: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Switches the failure mode.
    pub fn set_mode(&self, mode: FailureMode) {
        *self.mode.write() = mode;
    }

    /// Number of injected failures so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    fn inject(&self) -> StorageError {
        self.failures.fetch_add(1, Ordering::Relaxed);
        StorageError::Io(std::io::Error::other("injected storage failure"))
    }
}

impl<S: StableStorage> StableStorage for FlakyStorage<S> {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        match *self.mode.read() {
            FailureMode::FailStores | FailureMode::FailAll => Err(self.inject()),
            _ => self.inner.store(slot, blob),
        }
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        match *self.mode.read() {
            FailureMode::FailLoads | FailureMode::FailAll => Err(self.inject()),
            _ => self.inner.load(slot),
        }
    }

    fn delta_capable(&self) -> bool {
        self.inner.delta_capable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStorage;

    #[test]
    fn transparent_when_healthy() {
        let s = FlakyStorage::new(MemoryStorage::new());
        s.store("a", b"1").unwrap();
        assert_eq!(s.load("a").unwrap().unwrap(), b"1");
        assert_eq!(s.failures(), 0);
    }

    #[test]
    fn injects_store_failures() {
        let s = FlakyStorage::new(MemoryStorage::new());
        s.set_mode(FailureMode::FailStores);
        assert!(s.store("a", b"1").is_err());
        assert_eq!(s.load("a").unwrap(), None);
        assert_eq!(s.failures(), 1);
    }

    #[test]
    fn injects_load_failures() {
        let s = FlakyStorage::new(MemoryStorage::new());
        s.store("a", b"1").unwrap();
        s.set_mode(FailureMode::FailLoads);
        assert!(s.load("a").is_err());
        s.set_mode(FailureMode::None);
        assert_eq!(s.load("a").unwrap().unwrap(), b"1");
    }

    #[test]
    fn fail_all_blocks_everything() {
        let s = FlakyStorage::new(MemoryStorage::new());
        s.set_mode(FailureMode::FailAll);
        assert!(s.store("a", b"1").is_err());
        assert!(s.load("a").is_err());
        assert_eq!(s.failures(), 2);
    }
}
