//! Slot-name partitioning for multi-instance (sharded) deployments.

use std::sync::Arc;

use crate::{Result, StableStorage};

/// A [`StableStorage`] view that prefixes every slot name, so several
/// independent server instances (e.g. the shards of
/// `lcm_core::shard::ShardedServer`) can share one physical medium
/// without colliding on the well-known LCM slot names.
///
/// The prefix is part of the *host's* storage layout, not of the sealed
/// blobs: a malicious host can still feed one shard's blobs to another
/// shard, and the enclaves detect it (wrong sealing key across
/// platforms, or a client-context mismatch on the same platform) — the
/// namespace only keeps *honest* shards from overwriting each other.
///
/// # Example
///
/// ```
/// use lcm_storage::{MemoryStorage, NamespacedStorage, StableStorage};
/// use std::sync::Arc;
///
/// let shared = Arc::new(MemoryStorage::new());
/// let a = NamespacedStorage::new(shared.clone(), "shard0.");
/// let b = NamespacedStorage::new(shared.clone(), "shard1.");
/// a.store("state", b"a").unwrap();
/// b.store("state", b"b").unwrap();
/// assert_eq!(a.load("state").unwrap().unwrap(), b"a");
/// assert_eq!(shared.load("shard1.state").unwrap().unwrap(), b"b");
/// ```
#[derive(Clone)]
pub struct NamespacedStorage {
    inner: Arc<dyn StableStorage>,
    prefix: String,
}

impl std::fmt::Debug for NamespacedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamespacedStorage")
            .field("prefix", &self.prefix)
            .finish()
    }
}

impl NamespacedStorage {
    /// Wraps `inner`, prefixing every slot name with `prefix`.
    pub fn new(inner: Arc<dyn StableStorage>, prefix: impl Into<String>) -> Self {
        NamespacedStorage {
            inner,
            prefix: prefix.into(),
        }
    }

    /// The conventional prefix for shard `index` of a sharded server.
    pub fn shard_prefix(index: u32) -> String {
        format!("shard{index}.")
    }

    /// The prefixed physical slot name this view uses for `slot`.
    pub fn physical_slot(&self, slot: &str) -> String {
        format!("{}{}", self.prefix, slot)
    }
}

impl StableStorage for NamespacedStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        self.inner.store(&self.physical_slot(slot), blob)
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        self.inner.load(&self.physical_slot(slot))
    }

    fn delta_capable(&self) -> bool {
        self.inner.delta_capable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStorage;

    #[test]
    fn namespaces_are_disjoint() {
        let shared = Arc::new(MemoryStorage::new());
        let a = NamespacedStorage::new(shared.clone(), NamespacedStorage::shard_prefix(0));
        let b = NamespacedStorage::new(shared.clone(), NamespacedStorage::shard_prefix(1));
        a.store("lcm.state", b"state-a").unwrap();
        assert_eq!(b.load("lcm.state").unwrap(), None);
        b.store("lcm.state", b"state-b").unwrap();
        assert_eq!(a.load("lcm.state").unwrap().unwrap(), b"state-a");
        assert_eq!(b.load("lcm.state").unwrap().unwrap(), b"state-b");
    }

    #[test]
    fn physical_slots_are_visible_on_the_medium() {
        let shared = Arc::new(MemoryStorage::new());
        let ns = NamespacedStorage::new(shared.clone(), "shard3.");
        ns.store("lcm.keyblob", b"kb").unwrap();
        assert_eq!(shared.load("shard3.lcm.keyblob").unwrap().unwrap(), b"kb");
        assert_eq!(ns.physical_slot("x"), "shard3.x");
    }

    #[test]
    fn empty_prefix_is_transparent() {
        let shared = Arc::new(MemoryStorage::new());
        let ns = NamespacedStorage::new(shared.clone(), "");
        ns.store("slot", b"v").unwrap();
        assert_eq!(shared.load("slot").unwrap().unwrap(), b"v");
    }
}
