//! Honest in-memory storage.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::{Result, StableStorage};

/// An honest in-memory blob store: `load` always returns the most
/// recently stored blob.
///
/// # Example
///
/// ```
/// use lcm_storage::{MemoryStorage, StableStorage};
///
/// # fn main() -> Result<(), lcm_storage::StorageError> {
/// let storage = MemoryStorage::new();
/// storage.store("state", b"v1")?;
/// storage.store("state", b"v2")?;
/// assert_eq!(storage.load("state")?, Some(b"v2".to_vec()));
/// assert_eq!(storage.load("missing")?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct MemoryStorage {
    slots: RwLock<HashMap<String, Vec<u8>>>,
}

impl MemoryStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct slots stored.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether the store holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }
}

impl StableStorage for MemoryStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        self.slots.write().insert(slot.to_owned(), blob.to_vec());
        Ok(())
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.slots.read().get(slot).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_latest() {
        let s = MemoryStorage::new();
        s.store("a", b"1").unwrap();
        s.store("a", b"2").unwrap();
        assert_eq!(s.load("a").unwrap().unwrap(), b"2");
    }

    #[test]
    fn missing_slot_is_none() {
        let s = MemoryStorage::new();
        assert_eq!(s.load("nope").unwrap(), None);
    }

    #[test]
    fn slots_are_independent() {
        let s = MemoryStorage::new();
        s.store("a", b"1").unwrap();
        s.store("b", b"2").unwrap();
        assert_eq!(s.load("a").unwrap().unwrap(), b"1");
        assert_eq!(s.load("b").unwrap().unwrap(), b"2");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_blob_is_stored() {
        let s = MemoryStorage::new();
        s.store("a", b"").unwrap();
        assert_eq!(s.load("a").unwrap(), Some(vec![]));
    }
}
