//! Disk cost model for the discrete-event simulator.
//!
//! The paper's evaluation contrasts asynchronous writes (Fig. 4/5) with
//! synchronous `fsync` writes (Fig. 6): *"in order to achieve crash
//! tolerance, the server application has to write the state
//! synchronously to disk (fsync), this clearly decreases the
//! performance"*. [`DiskModel`] converts a write size and sync flag into
//! a simulated latency charged by `lcm-sim`.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Latency/throughput model of the server's SSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Fixed cost of an fsync barrier (SATA SSD class: ~1–5 ms; the
    /// shapes in Fig. 6 imply a few ms on the paper's machine).
    pub fsync_latency: Duration,
    /// Per-byte streaming write cost (1 / bandwidth).
    pub ns_per_byte: f64,
    /// Fixed submission overhead of any write syscall.
    pub submit_overhead: Duration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            fsync_latency: Duration::from_micros(2_500),
            // ~500 MB/s SATA SSD ⇒ 2 ns/byte.
            ns_per_byte: 2.0,
            submit_overhead: Duration::from_micros(5),
        }
    }
}

impl DiskModel {
    /// Cost of writing `bytes` without a sync barrier (page-cache write).
    pub fn async_write_cost(&self, bytes: usize) -> Duration {
        self.submit_overhead + Duration::from_nanos((bytes as f64 * self.ns_per_byte) as u64)
    }

    /// Cost of writing `bytes` followed by `fsync`.
    pub fn sync_write_cost(&self, bytes: usize) -> Duration {
        self.async_write_cost(bytes) + self.fsync_latency
    }

    /// Cost of a write under the given durability flag.
    pub fn write_cost(&self, bytes: usize, fsync: bool) -> Duration {
        if fsync {
            self.sync_write_cost(bytes)
        } else {
            self.async_write_cost(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_costs_more_than_async() {
        let disk = DiskModel::default();
        assert!(disk.sync_write_cost(1024) > disk.async_write_cost(1024));
        assert_eq!(
            disk.sync_write_cost(1024) - disk.async_write_cost(1024),
            disk.fsync_latency
        );
    }

    #[test]
    fn cost_scales_with_size() {
        let disk = DiskModel::default();
        assert!(disk.async_write_cost(1 << 20) > disk.async_write_cost(1 << 10));
    }

    #[test]
    fn write_cost_dispatches_on_flag() {
        let disk = DiskModel::default();
        assert_eq!(disk.write_cost(100, true), disk.sync_write_cost(100));
        assert_eq!(disk.write_cost(100, false), disk.async_write_cost(100));
    }

    #[test]
    fn zero_byte_write_still_costs_overhead() {
        let disk = DiskModel::default();
        assert_eq!(disk.async_write_cost(0), disk.submit_overhead);
    }
}
