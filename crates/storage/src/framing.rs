//! Length-prefixed, checksummed record framing.
//!
//! One parser for every append-style byte log in the workspace: the
//! delta-log journal segments ([`crate::DeltaLogStorage`]) and the
//! file-backed AOF baseline both append records that must survive a
//! crash mid-write. A frame is
//!
//! ```text
//! len(4, BE) ‖ crc32(payload)(4, BE) ‖ payload(len)
//! ```
//!
//! and [`scan`] walks a buffer frame by frame, stopping at the first
//! frame whose length runs past the buffer or whose checksum does not
//! match — the *torn tail* a crash mid-append leaves behind. Everything
//! before the stop point is the valid prefix the caller may trust;
//! everything after it must be truncated away so later appends land
//! after real records, not after garbage.

/// Bytes of framing overhead per record (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Bitwise implementation — the framing sits on cold paths (group
/// commit, recovery replay), so table-free simplicity wins.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends one framed record holding `payload` to `buf`.
pub fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.reserve(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);
}

/// The result of walking a buffer of frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome<'a> {
    /// The payloads of every intact frame, in order.
    pub payloads: Vec<&'a [u8]>,
    /// Length of the valid prefix: the byte offset just past the last
    /// intact frame. Equal to `buf.len()` iff the buffer is clean.
    pub valid_len: usize,
}

impl ScanOutcome<'_> {
    /// Whether the buffer ended in a torn or corrupt frame.
    pub fn is_torn(&self, buf_len: usize) -> bool {
        self.valid_len < buf_len
    }
}

/// Walks `buf` frame by frame, returning the intact payloads and the
/// length of the valid prefix. Never fails: a torn or corrupt tail
/// simply ends the scan.
pub fn scan(buf: &[u8]) -> ScanOutcome<'_> {
    let mut payloads = Vec::new();
    let mut offset = 0;
    while buf.len() - offset >= FRAME_HEADER {
        let len = u32::from_be_bytes(buf[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_be_bytes(buf[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let start = offset + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= buf.len()) else {
            break; // length runs past the buffer: torn mid-payload
        };
        let payload = &buf[start..end];
        if crc32(payload) != want {
            break; // bit rot or a torn header overwrite
        }
        payloads.push(payload);
        offset = end;
    }
    ScanOutcome {
        payloads,
        valid_len: offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"third record");
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![&b"first"[..], b"", b"third record"]);
        assert_eq!(out.valid_len, buf.len());
        assert!(!out.is_torn(buf.len()));
    }

    #[test]
    fn torn_payload_truncates_to_last_intact_frame() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"keep me");
        let clean = buf.len();
        append_frame(&mut buf, b"lost in the crash");
        buf.truncate(clean + FRAME_HEADER + 4); // mid-payload
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![&b"keep me"[..]]);
        assert_eq!(out.valid_len, clean);
        assert!(out.is_torn(buf.len()));
    }

    #[test]
    fn torn_header_truncates_too() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"keep me");
        let clean = buf.len();
        buf.extend_from_slice(&[0x00, 0x00]); // 2 of 8 header bytes
        let out = scan(&buf);
        assert_eq!(out.valid_len, clean);
        assert_eq!(out.payloads.len(), 1);
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"good");
        let clean = buf.len();
        append_frame(&mut buf, b"flipped");
        append_frame(&mut buf, b"unreachable");
        let bit = clean + FRAME_HEADER; // first payload byte of "flipped"
        buf[bit] ^= 0x01;
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![&b"good"[..]]);
        assert_eq!(out.valid_len, clean);
    }

    #[test]
    fn absurd_length_does_not_overflow() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"ok");
        let clean = buf.len();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        buf.extend_from_slice(b"short");
        let out = scan(&buf);
        assert_eq!(out.valid_len, clean);
    }

    #[test]
    fn empty_buffer_is_clean() {
        let out = scan(&[]);
        assert!(out.payloads.is_empty());
        assert_eq!(out.valid_len, 0);
    }
}
