//! The segmented sealed delta-log storage engine.
//!
//! Whole-snapshot persistence seals and stores the *entire* service
//! state on every batch, so total state size bounds throughput — the
//! bottleneck the paper's asynchronous-write mode hides but does not
//! remove. [`DeltaLogStorage`] removes it: the enclave emits small
//! sealed *deltas* per batch, and this engine journals them into an
//! append-style segmented log over any inner [`StableStorage`], with
//!
//! * a **group-commit writer** — concurrent delta stores from many
//!   shards'/replicas' lanes are drained into one inner write (one
//!   modelled fsync) by whichever caller wins the committer role, the
//!   rest blocking until their record is durable;
//! * **sealed segments** — the active journal head is sealed into an
//!   immutable segment once it reaches
//!   [`DeltaLogConfig::segment_bytes`];
//! * **compaction** — a sealed checkpoint store supersedes the slot's
//!   older deltas; fully superseded segments are garbage-collected from
//!   the low end of the log;
//! * **recovery** — reopening scans checkpoints + segments + head,
//!   truncates any torn head tail at the last intact frame
//!   ([`crate::framing`]), and replays the surviving records in epoch
//!   order.
//!
//! The engine never opens a seal: deltas and checkpoints are opaque
//! ciphertexts that it routes by a one-byte *kind* prefix the enclave
//! places in front of every blob. On `load` it reassembles
//! `checkpoint ‖ deltas` into a *bundle* the enclave unseals and
//! re-verifies delta by delta against its hash chain — a host that
//! reorders, drops, or splices journal records is detected exactly like
//! any other rollback/forking attempt.
//!
//! Crash-safety invariants (exercised by the recovery proptests in
//! `tests/storage_torture.rs`):
//!
//! 1. every record is tagged with a monotone *epoch*, so replaying a
//!    prefix of inner writes — in any order the host flushed them —
//!    recovers a *prefix* of the committed history;
//! 2. checkpoints alternate between two parity slots and deltas are
//!    GC-eligible only one checkpoint generation late, so a torn
//!    checkpoint overwrite always leaves the previous checkpoint plus
//!    the deltas needed to reach (at least) its state;
//! 3. the manifest is written before any checkpoint that would make a
//!    new slot discoverable, and before the head is cleared when a
//!    segment seals, so no acknowledged record is ever unreachable.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::framing;
use crate::{Result, StableStorage, StorageError};

/// Kind byte of a blob the engine must not interpret (sealed key
/// blobs, foreign slots): stored and loaded verbatim.
pub const BLOB_KIND_OPAQUE: u8 = 0;
/// Kind byte of a sealed full-state checkpoint.
pub const BLOB_KIND_CHECKPOINT: u8 = 1;
/// Kind byte of a sealed per-batch delta.
pub const BLOB_KIND_DELTA: u8 = 2;
/// Kind byte of an engine-assembled recovery bundle:
/// `[3] ‖ frame(checkpoint) ‖ frame(delta)…` ([`parse_bundle`]).
pub const BLOB_KIND_BUNDLE: u8 = 3;

/// Slot holding the active (unsealed) journal segment.
const HEAD_SLOT: &str = "dlog.head";

fn seg_slot(k: u64) -> String {
    format!("dlog.seg.{k:08}")
}

fn meta_slot(parity: u8) -> String {
    format!("dlog.meta.{parity}")
}

fn ckpt_slot(slot: &str, parity: u8) -> String {
    format!("dlog.ckpt.{parity}.{slot}")
}

/// Splits an engine-assembled bundle blob into its checkpoint frame
/// and delta frames. Returns `None` unless the blob has the bundle
/// kind byte, at least one frame, and **no** trailing bytes — a
/// tampered bundle must not parse.
pub fn parse_bundle(blob: &[u8]) -> Option<(&[u8], Vec<&[u8]>)> {
    let body = match blob.split_first() {
        Some((&BLOB_KIND_BUNDLE, body)) => body,
        _ => return None,
    };
    let scanned = framing::scan(body);
    if scanned.valid_len != body.len() || scanned.payloads.is_empty() {
        return None;
    }
    let mut frames = scanned.payloads.into_iter();
    let checkpoint = frames.next().expect("non-empty");
    Some((checkpoint, frames.collect()))
}

/// Assembles a recovery bundle from a checkpoint blob and delta blobs
/// (the inverse of [`parse_bundle`]; public so tests can fabricate
/// bundles without an engine).
pub fn make_bundle<'a>(checkpoint: &[u8], deltas: impl Iterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut bundle = vec![BLOB_KIND_BUNDLE];
    framing::append_frame(&mut bundle, checkpoint);
    for d in deltas {
        framing::append_frame(&mut bundle, d);
    }
    bundle
}

/// Tuning knobs for [`DeltaLogStorage`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaLogConfig {
    /// Seal the journal head into an immutable segment once it reaches
    /// this many bytes.
    pub segment_bytes: usize,
}

impl Default for DeltaLogConfig {
    fn default() -> Self {
        DeltaLogConfig {
            segment_bytes: 64 * 1024,
        }
    }
}

/// Observable engine counters (monotone since `open`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaLogStats {
    /// Inner writes of the journal head — each one is a group commit
    /// covering every record drained that round.
    pub group_commits: u64,
    /// Delta records appended across all group commits.
    pub records_appended: u64,
    /// Head buffers sealed into immutable segments.
    pub segments_sealed: u64,
    /// Checkpoints stored (compaction points).
    pub checkpoints: u64,
    /// Fully superseded segments garbage-collected.
    pub segments_gced: u64,
    /// Torn tails truncated during recovery (head or segment).
    pub torn_truncations: u64,
}

#[derive(Debug, Default)]
struct SlotState {
    /// Epoch of the newest durable checkpoint, if any.
    ckpt_epoch: Option<u64>,
    /// Which parity slot holds the newest checkpoint.
    ckpt_parity: u8,
    /// Epoch of the previous checkpoint generation: deltas at or below
    /// it are GC-eligible (the lag keeps a torn checkpoint overwrite
    /// recoverable from its predecessor).
    prev_ckpt_epoch: u64,
    /// Deltas newer than the current checkpoint, by epoch — exactly
    /// what `load` appends to the checkpoint frame.
    deltas: BTreeMap<u64, Vec<u8>>,
}

struct Core {
    /// Records enqueued for the next group commit.
    queue: Vec<(u64, String, Vec<u8>)>,
    next_epoch: u64,
    /// Highest epoch whose commit round has finished (ok or failed).
    committed_epoch: u64,
    /// Whether a committer is currently writing the head.
    committing: bool,
    /// Epoch ranges whose commit round hit an inner store error.
    failed: Vec<(u64, u64, String)>,
    /// In-memory mirror of the durable journal head.
    head_buf: Vec<u8>,
    /// (epoch, slot) of every record in the head.
    head_index: Vec<(u64, String)>,
    seg_lo: u64,
    seg_next: u64,
    /// (epoch, slot) of every record per sealed segment.
    seg_index: BTreeMap<u64, Vec<(u64, String)>>,
    meta_gen: u64,
    meta_parity: u8,
    slots: HashMap<String, SlotState>,
    stats: DeltaLogStats,
}

/// The segmented sealed delta-log engine. See the module docs.
///
/// Wrap it once around the *root* storage of a deployment: slot names
/// arriving from per-shard/per-replica [`crate::NamespacedStorage`]
/// layers stay distinct, so one engine instance journals every lane —
/// which is what lets the group-commit writer amortize one inner write
/// across all of them.
pub struct DeltaLogStorage {
    inner: Arc<dyn StableStorage>,
    config: DeltaLogConfig,
    core: Mutex<Core>,
    commit_done: Condvar,
}

impl std::fmt::Debug for DeltaLogStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.lock_core();
        f.debug_struct("DeltaLogStorage")
            .field("segments", &(core.seg_lo..core.seg_next))
            .field("head_bytes", &core.head_buf.len())
            .field("slots", &core.slots.len())
            .field("stats", &core.stats)
            .finish()
    }
}

fn encode_record(epoch: u64, slot: &str, blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + slot.len() + blob.len());
    out.extend_from_slice(&epoch.to_be_bytes());
    out.extend_from_slice(&(slot.len() as u32).to_be_bytes());
    out.extend_from_slice(slot.as_bytes());
    out.extend_from_slice(blob);
    out
}

fn parse_record(payload: &[u8]) -> Option<(u64, &str, &[u8])> {
    let epoch = u64::from_be_bytes(payload.get(..8)?.try_into().ok()?);
    let slot_len = u32::from_be_bytes(payload.get(8..12)?.try_into().ok()?) as usize;
    let slot = std::str::from_utf8(payload.get(12..12 + slot_len)?).ok()?;
    Some((epoch, slot, payload.get(12 + slot_len..)?))
}

fn encode_meta(gen: u64, seg_lo: u64, seg_next: u64, slots: &[&String]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&gen.to_be_bytes());
    payload.extend_from_slice(&seg_lo.to_be_bytes());
    payload.extend_from_slice(&seg_next.to_be_bytes());
    payload.extend_from_slice(&(slots.len() as u32).to_be_bytes());
    for slot in slots {
        payload.extend_from_slice(&(slot.len() as u32).to_be_bytes());
        payload.extend_from_slice(slot.as_bytes());
    }
    let mut framed = Vec::new();
    framing::append_frame(&mut framed, &payload);
    framed
}

fn parse_meta(buf: &[u8]) -> Option<(u64, u64, u64, Vec<String>)> {
    let scanned = framing::scan(buf);
    let payload = *scanned.payloads.first()?;
    let gen = u64::from_be_bytes(payload.get(..8)?.try_into().ok()?);
    let seg_lo = u64::from_be_bytes(payload.get(8..16)?.try_into().ok()?);
    let seg_next = u64::from_be_bytes(payload.get(16..24)?.try_into().ok()?);
    let n = u32::from_be_bytes(payload.get(24..28)?.try_into().ok()?) as usize;
    let mut slots = Vec::with_capacity(n.min(1 << 16));
    let mut at = 28;
    for _ in 0..n {
        let len = u32::from_be_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        slots.push(std::str::from_utf8(payload.get(at..at + len)?).ok()?.into());
        at += len;
    }
    Some((gen, seg_lo, seg_next, slots))
}

fn encode_ckpt(epoch: u64, blob: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + blob.len());
    payload.extend_from_slice(&epoch.to_be_bytes());
    payload.extend_from_slice(blob);
    let mut framed = Vec::new();
    framing::append_frame(&mut framed, &payload);
    framed
}

fn parse_ckpt(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    let scanned = framing::scan(buf);
    if scanned.valid_len != buf.len() {
        return None; // a torn checkpoint overwrite is invalid wholesale
    }
    let payload = *scanned.payloads.first()?;
    let epoch = u64::from_be_bytes(payload.get(..8)?.try_into().ok()?);
    Some((epoch, payload.get(8..)?.to_vec()))
}

impl DeltaLogStorage {
    /// Opens the engine over `inner` with default configuration,
    /// running recovery (manifest + checkpoints + segment/head scan).
    ///
    /// # Errors
    ///
    /// Fails only on inner I/O errors; torn or corrupt journal state is
    /// recovered from, not reported.
    pub fn open(inner: Arc<dyn StableStorage>) -> Result<Self> {
        Self::with_config(inner, DeltaLogConfig::default())
    }

    /// Opens the engine with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Fails only on inner I/O errors.
    pub fn with_config(inner: Arc<dyn StableStorage>, config: DeltaLogConfig) -> Result<Self> {
        let mut core = Core {
            queue: Vec::new(),
            next_epoch: 1,
            committed_epoch: 0,
            committing: false,
            failed: Vec::new(),
            head_buf: Vec::new(),
            head_index: Vec::new(),
            seg_lo: 0,
            seg_next: 0,
            seg_index: BTreeMap::new(),
            meta_gen: 0,
            meta_parity: 0,
            slots: HashMap::new(),
            stats: DeltaLogStats::default(),
        };

        // Manifest: the valid parity with the highest generation wins.
        let mut best_meta: Option<(u64, u8, u64, u64, Vec<String>)> = None;
        for parity in 0..2u8 {
            if let Some(buf) = inner.load(&meta_slot(parity))? {
                if let Some((gen, lo, next, slots)) = parse_meta(&buf) {
                    if best_meta.as_ref().map_or(true, |b| gen > b.0) {
                        best_meta = Some((gen, parity, lo, next, slots));
                    }
                }
            }
        }
        let mut max_epoch = 0u64;
        let mut manifest_slots = Vec::new();
        if let Some((gen, parity, lo, next, slots)) = best_meta {
            core.meta_gen = gen;
            core.meta_parity = parity;
            core.seg_lo = lo;
            core.seg_next = next;
            manifest_slots = slots;
        }

        // Checkpoints: probe both parities per manifest slot; the valid
        // one with the higher epoch is current, the other is the
        // fallback generation that gates delta GC.
        for slot in manifest_slots {
            let mut found: Vec<(u64, u8)> = Vec::new();
            for parity in 0..2u8 {
                if let Some(buf) = inner.load(&ckpt_slot(&slot, parity))? {
                    if let Some((epoch, _)) = parse_ckpt(&buf) {
                        found.push((epoch, parity));
                    }
                }
            }
            found.sort_unstable();
            let mut state = SlotState::default();
            if let Some(&(epoch, parity)) = found.last() {
                state.ckpt_epoch = Some(epoch);
                state.ckpt_parity = parity;
                state.prev_ckpt_epoch = found.iter().rev().nth(1).map_or(0, |&(e, _)| e);
                max_epoch = max_epoch.max(epoch);
            }
            core.slots.insert(slot, state);
        }

        // Sealed segments, then the head: collect records by epoch.
        let mut records: BTreeMap<u64, (String, Vec<u8>)> = BTreeMap::new();
        for k in core.seg_lo..core.seg_next {
            let Some(buf) = inner.load(&seg_slot(k))? else {
                continue; // GC'd before a manifest update landed
            };
            if buf.is_empty() {
                continue;
            }
            let scanned = framing::scan(&buf);
            if scanned.is_torn(buf.len()) {
                core.stats.torn_truncations += 1;
            }
            let mut index = Vec::new();
            for payload in scanned.payloads {
                if let Some((epoch, slot, blob)) = parse_record(payload) {
                    index.push((epoch, slot.to_string()));
                    records.insert(epoch, (slot.to_string(), blob.to_vec()));
                }
            }
            core.seg_index.insert(k, index);
        }
        if let Some(buf) = inner.load(HEAD_SLOT)? {
            let scanned = framing::scan(&buf);
            if scanned.is_torn(buf.len()) {
                core.stats.torn_truncations += 1;
            }
            for payload in &scanned.payloads {
                if let Some((epoch, slot, blob)) = parse_record(payload) {
                    core.head_index.push((epoch, slot.to_string()));
                    records.insert(epoch, (slot.to_string(), blob.to_vec()));
                }
            }
            core.head_buf = buf[..scanned.valid_len].to_vec();
        }

        for (epoch, (slot, blob)) in records {
            max_epoch = max_epoch.max(epoch);
            let state = core.slots.entry(slot).or_default();
            if epoch > state.ckpt_epoch.unwrap_or(0) {
                state.deltas.insert(epoch, blob);
            }
        }
        core.next_epoch = max_epoch + 1;
        core.committed_epoch = max_epoch;

        Ok(DeltaLogStorage {
            inner,
            config,
            core: Mutex::new(core),
            commit_done: Condvar::new(),
        })
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> DeltaLogStats {
        self.lock_core().stats
    }

    /// The inner storage the engine journals into (for assertions).
    pub fn inner(&self) -> &Arc<dyn StableStorage> {
        &self.inner
    }

    /// Writes the manifest to the non-current parity slot with the
    /// given segment window; on success flips the current parity.
    fn write_meta(&self, core: &mut Core, seg_lo: u64, seg_next: u64) -> Result<()> {
        let gen = core.meta_gen + 1;
        let parity = core.meta_parity ^ 1;
        let slots: Vec<&String> = core.slots.keys().collect();
        let buf = encode_meta(gen, seg_lo, seg_next, &slots);
        self.inner.store(&meta_slot(parity), &buf)?;
        core.meta_gen = gen;
        core.meta_parity = parity;
        Ok(())
    }

    /// Seals the head into an immutable segment if it is full. Best
    /// effort: a failed inner write leaves the head in place (records
    /// stay durable there) and sealing retries at the next commit.
    fn maybe_seal(&self, core: &mut Core) {
        if core.head_buf.len() < self.config.segment_bytes {
            return;
        }
        let k = core.seg_next;
        if self.inner.store(&seg_slot(k), &core.head_buf).is_err() {
            return;
        }
        // The manifest must cover the segment before the head may be
        // cleared, or a crash between the two writes would orphan every
        // record in it.
        if self.write_meta(core, core.seg_lo, k + 1).is_err() {
            return;
        }
        let _ = self.inner.store(HEAD_SLOT, &[]); // dup records dedupe by epoch
        let index = std::mem::take(&mut core.head_index);
        core.seg_index.insert(k, index);
        core.seg_next = k + 1;
        core.head_buf.clear();
        core.stats.segments_sealed += 1;
    }

    /// Garbage-collects fully superseded segments from the low end.
    fn maybe_gc(&self, core: &mut Core) {
        let mut advanced = false;
        while core.seg_lo < core.seg_next {
            let Some(index) = core.seg_index.get(&core.seg_lo) else {
                break;
            };
            let superseded = index.iter().all(|(epoch, slot)| {
                core.slots
                    .get(slot)
                    .is_some_and(|s| *epoch <= s.prev_ckpt_epoch)
            });
            if !superseded {
                break;
            }
            let k = core.seg_lo;
            let _ = self.inner.store(&seg_slot(k), &[]);
            core.seg_index.remove(&k);
            core.seg_lo += 1;
            core.stats.segments_gced += 1;
            advanced = true;
        }
        if advanced {
            let _ = self.write_meta(core, core.seg_lo, core.seg_next);
        }
    }

    /// The group-commit path: enqueue, then either win the committer
    /// role and drain everything pending into one inner head write, or
    /// block until a committer covered our epoch.
    fn store_delta(&self, slot: &str, blob: &[u8]) -> Result<()> {
        let mut core = self.lock_core();
        let epoch = core.next_epoch;
        core.next_epoch += 1;
        core.queue.push((epoch, slot.to_string(), blob.to_vec()));
        loop {
            if let Some(msg) = core
                .failed
                .iter()
                .find(|&&(lo, hi, _)| (lo..=hi).contains(&epoch))
                .map(|(_, _, m)| m.clone())
            {
                return Err(StorageError::Io(std::io::Error::other(format!(
                    "group commit failed: {msg}"
                ))));
            }
            if core.committed_epoch >= epoch {
                return Ok(());
            }
            if !core.committing {
                core.committing = true;
                let batch = std::mem::take(&mut core.queue);
                let first = batch.first().map(|r| r.0).unwrap_or(epoch);
                let last = batch.last().map(|r| r.0).unwrap_or(epoch);
                let mut buf = core.head_buf.clone();
                for (e, s, b) in &batch {
                    framing::append_frame(&mut buf, &encode_record(*e, s, b));
                }
                // One inner write covers the whole drained batch; the
                // lock is released so more lanes can enqueue meanwhile.
                drop(core);
                let written = self.inner.store(HEAD_SLOT, &buf);
                core = self.lock_core();
                core.committing = false;
                core.committed_epoch = last;
                match written {
                    Ok(()) => {
                        core.stats.group_commits += 1;
                        core.stats.records_appended += batch.len() as u64;
                        core.head_buf = buf;
                        for (e, s, b) in batch {
                            core.head_index.push((e, s.clone()));
                            core.slots.entry(s).or_default().deltas.insert(e, b);
                        }
                        self.maybe_seal(&mut core);
                    }
                    Err(e) => core.failed.push((first, last, e.to_string())),
                }
                self.commit_done.notify_all();
                continue;
            }
            core = self
                .commit_done
                .wait(core)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The compaction path: a checkpoint supersedes the slot's deltas.
    fn store_checkpoint(&self, slot: &str, blob: &[u8]) -> Result<()> {
        let mut core = self.lock_core();
        let epoch = core.next_epoch;
        core.next_epoch += 1;
        if !core.slots.contains_key(slot) {
            // The slot must be discoverable before its first checkpoint
            // lands, or a crash in between loses it entirely.
            core.slots.insert(slot.to_string(), SlotState::default());
            let (lo, next) = (core.seg_lo, core.seg_next);
            if let Err(e) = self.write_meta(&mut core, lo, next) {
                core.slots.remove(slot);
                return Err(e);
            }
        }
        let state = &core.slots[slot];
        let parity = match state.ckpt_epoch {
            Some(_) => state.ckpt_parity ^ 1,
            None => 0,
        };
        self.inner
            .store(&ckpt_slot(slot, parity), &encode_ckpt(epoch, blob))?;
        let state = core.slots.get_mut(slot).expect("inserted above");
        state.prev_ckpt_epoch = state.ckpt_epoch.unwrap_or(0);
        state.ckpt_epoch = Some(epoch);
        state.ckpt_parity = parity;
        state.deltas = state.deltas.split_off(&(epoch + 1));
        core.stats.checkpoints += 1;
        self.maybe_gc(&mut core);
        Ok(())
    }
}

impl StableStorage for DeltaLogStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        match blob.first() {
            Some(&BLOB_KIND_DELTA) => self.store_delta(slot, blob),
            Some(&BLOB_KIND_CHECKPOINT) => self.store_checkpoint(slot, blob),
            _ => self.inner.store(slot, blob),
        }
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        let (parity, deltas) = {
            let core = self.lock_core();
            let Some(state) = core.slots.get(slot) else {
                drop(core);
                return self.inner.load(slot);
            };
            if state.ckpt_epoch.is_none() {
                drop(core);
                return self.inner.load(slot);
            }
            (
                state.ckpt_parity,
                state.deltas.values().cloned().collect::<Vec<_>>(),
            )
        };
        let Some(buf) = self.inner.load(&ckpt_slot(slot, parity))? else {
            return Ok(None);
        };
        let Some((_, ckpt_blob)) = parse_ckpt(&buf) else {
            return Ok(None);
        };
        if deltas.is_empty() {
            return Ok(Some(ckpt_blob));
        }
        Ok(Some(make_bundle(
            &ckpt_blob,
            deltas.iter().map(Vec::as_slice),
        )))
    }

    fn delta_capable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayedStorage, MemoryStorage};
    use std::time::Duration;

    fn ckpt(n: u8) -> Vec<u8> {
        let mut b = vec![BLOB_KIND_CHECKPOINT];
        b.extend_from_slice(&[n; 16]);
        b
    }

    fn delta(n: u8) -> Vec<u8> {
        let mut b = vec![BLOB_KIND_DELTA];
        b.extend_from_slice(&[n; 8]);
        b
    }

    fn engine(segment_bytes: usize) -> (Arc<MemoryStorage>, DeltaLogStorage) {
        let inner = Arc::new(MemoryStorage::new());
        let engine =
            DeltaLogStorage::with_config(inner.clone(), DeltaLogConfig { segment_bytes }).unwrap();
        (inner, engine)
    }

    #[test]
    fn checkpoint_then_load_returns_it_verbatim() {
        let (_, e) = engine(1 << 20);
        e.store("s", &ckpt(1)).unwrap();
        assert_eq!(e.load("s").unwrap().unwrap(), ckpt(1));
    }

    #[test]
    fn deltas_bundle_after_the_checkpoint_in_order() {
        let (_, e) = engine(1 << 20);
        e.store("s", &ckpt(1)).unwrap();
        e.store("s", &delta(2)).unwrap();
        e.store("s", &delta(3)).unwrap();
        let bundle = e.load("s").unwrap().unwrap();
        let (c, ds) = parse_bundle(&bundle).unwrap();
        assert_eq!(c, &ckpt(1)[..]);
        assert_eq!(ds, vec![&delta(2)[..], &delta(3)[..]]);
    }

    #[test]
    fn opaque_blobs_pass_through() {
        let (inner, e) = engine(1 << 20);
        let opaque = [BLOB_KIND_OPAQUE, 9, 9];
        e.store("key", &opaque).unwrap();
        assert_eq!(inner.load("key").unwrap().unwrap(), opaque);
        assert_eq!(e.load("key").unwrap().unwrap(), opaque);
        assert_eq!(e.load("never-stored").unwrap(), None);
    }

    #[test]
    fn recovery_replays_checkpoint_and_deltas() {
        let (inner, e) = engine(1 << 20);
        e.store("s", &ckpt(1)).unwrap();
        e.store("s", &delta(2)).unwrap();
        e.store("s", &delta(3)).unwrap();
        drop(e);
        let e2 = DeltaLogStorage::open(inner).unwrap();
        let got = e2.load("s").unwrap().unwrap();
        let (c, ds) = parse_bundle(&got).unwrap();
        assert_eq!(c, &ckpt(1)[..]);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn sealing_rolls_the_head_into_segments_and_recovers() {
        let (inner, e) = engine(64); // tiny: every record seals a segment
        e.store("s", &ckpt(1)).unwrap();
        for n in 2..8u8 {
            e.store("s", &delta(n)).unwrap();
        }
        assert!(e.stats().segments_sealed >= 2, "{:?}", e.stats());
        drop(e);
        let e2 = DeltaLogStorage::open(inner).unwrap();
        let got = e2.load("s").unwrap().unwrap();
        let (_, ds) = parse_bundle(&got).unwrap();
        assert_eq!(ds.len(), 6, "all sealed + head records recovered");
    }

    #[test]
    fn torn_head_tail_is_truncated_to_the_last_record() {
        let (inner, e) = engine(1 << 20);
        e.store("s", &ckpt(1)).unwrap();
        e.store("s", &delta(2)).unwrap();
        e.store("s", &delta(3)).unwrap();
        drop(e);
        // Crash mid-append: chop bytes off the durable head.
        let mut head = inner.load(HEAD_SLOT).unwrap().unwrap();
        head.truncate(head.len() - 3);
        inner.store(HEAD_SLOT, &head).unwrap();
        let e2 = DeltaLogStorage::open(inner).unwrap();
        assert_eq!(e2.stats().torn_truncations, 1);
        let got = e2.load("s").unwrap().unwrap();
        let (_, ds) = parse_bundle(&got).unwrap();
        assert_eq!(ds, vec![&delta(2)[..]], "prefix survives, torn tail gone");
    }

    #[test]
    fn compaction_gcs_superseded_segments_one_generation_late() {
        let (_, e) = engine(32);
        e.store("s", &ckpt(1)).unwrap();
        for n in 2..6u8 {
            e.store("s", &delta(n)).unwrap();
        }
        let sealed = e.stats().segments_sealed;
        assert!(sealed >= 2);
        // First checkpoint after the deltas: supersedes them, but GC
        // lags one generation (the fallback invariant).
        e.store("s", &ckpt(7)).unwrap();
        assert_eq!(e.stats().segments_gced, 0);
        // Second checkpoint: the old generation's deltas are now safe.
        e.store("s", &ckpt(8)).unwrap();
        assert_eq!(e.stats().segments_gced, sealed);
    }

    #[test]
    fn torn_checkpoint_overwrite_falls_back_to_the_previous_one() {
        let (inner, e) = engine(1 << 20);
        e.store("s", &ckpt(1)).unwrap();
        e.store("s", &delta(2)).unwrap();
        e.store("s", &ckpt(3)).unwrap(); // parity 1
        e.store("s", &delta(4)).unwrap();
        e.store("s", &ckpt(5)).unwrap(); // parity 0 (overwrites ckpt 1)
        drop(e);
        // Tear the newest checkpoint's write.
        let slot = ckpt_slot("s", 0);
        let mut buf = inner.load(&slot).unwrap().unwrap();
        buf.truncate(buf.len() - 2);
        inner.store(&slot, &buf).unwrap();
        let e2 = DeltaLogStorage::open(inner).unwrap();
        let got = e2.load("s").unwrap().unwrap();
        let (c, ds) = parse_bundle(&got).unwrap();
        assert_eq!(c, &ckpt(3)[..], "previous generation serves");
        assert_eq!(ds, vec![&delta(4)[..]], "its deltas were not GC'd");
    }

    #[test]
    fn group_commit_amortizes_inner_head_writes() {
        let inner = Arc::new(DelayedStorage::new(
            MemoryStorage::new(),
            Duration::from_millis(4),
        ));
        let e = Arc::new(
            DeltaLogStorage::with_config(
                inner.clone() as Arc<dyn StableStorage>,
                DeltaLogConfig {
                    segment_bytes: 1 << 20,
                },
            )
            .unwrap(),
        );
        e.store("s", &ckpt(1)).unwrap();
        let before = inner.stores();
        const LANES: u64 = 16;
        let handles: Vec<_> = (0..LANES)
            .map(|i| {
                let e = e.clone();
                std::thread::spawn(move || e.store(&format!("lane{i}"), &delta(i as u8)).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let head_writes = inner.stores() - before;
        assert!(
            head_writes < LANES,
            "{LANES} concurrent lanes took {head_writes} inner writes — no amortization"
        );
        assert_eq!(e.stats().records_appended, LANES);
        assert_eq!(e.stats().group_commits, head_writes);
    }

    #[test]
    fn epochs_continue_after_recovery() {
        let (inner, e) = engine(1 << 20);
        e.store("s", &ckpt(1)).unwrap();
        e.store("s", &delta(2)).unwrap();
        drop(e);
        let e2 = DeltaLogStorage::open(inner.clone()).unwrap();
        e2.store("s", &delta(3)).unwrap();
        drop(e2);
        let e3 = DeltaLogStorage::open(inner).unwrap();
        let got = e3.load("s").unwrap().unwrap();
        let (_, ds) = parse_bundle(&got).unwrap();
        assert_eq!(ds, vec![&delta(2)[..], &delta(3)[..]]);
    }

    #[test]
    fn bundle_parse_rejects_tampering() {
        let bundle = make_bundle(&ckpt(1), [&delta(2)[..]].into_iter());
        assert!(parse_bundle(&bundle).is_some());
        // Trailing garbage, wrong kind, truncation: all rejected.
        let mut trailing = bundle.clone();
        trailing.push(0);
        assert!(parse_bundle(&trailing).is_none());
        let mut wrong_kind = bundle.clone();
        wrong_kind[0] = BLOB_KIND_CHECKPOINT;
        assert!(parse_bundle(&wrong_kind).is_none());
        assert!(parse_bundle(&bundle[..bundle.len() - 1]).is_none());
        assert!(parse_bundle(&[BLOB_KIND_BUNDLE]).is_none());
    }

    #[test]
    fn failed_group_commit_surfaces_to_the_caller() {
        let flaky = Arc::new(crate::FlakyStorage::new(MemoryStorage::new()));
        let e = DeltaLogStorage::open(flaky.clone() as Arc<dyn StableStorage>).unwrap();
        e.store("s", &ckpt(1)).unwrap();
        flaky.set_mode(crate::FailureMode::FailStores);
        assert!(e.store("s", &delta(2)).is_err());
        flaky.set_mode(crate::FailureMode::None);
        // The engine keeps working after the failure.
        e.store("s", &delta(3)).unwrap();
        let got = e.load("s").unwrap().unwrap();
        let (_, ds) = parse_bundle(&got).unwrap();
        assert_eq!(ds, vec![&delta(3)[..]]);
    }
}
