use std::error::Error;
use std::fmt;

/// Error type for storage operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An underlying I/O failure (file-backed stores).
    Io(std::io::Error),
    /// The requested historical version does not exist.
    NoSuchVersion {
        /// The slot that was queried.
        slot: String,
        /// The version index that was requested.
        version: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O failure: {e}"),
            StorageError::NoSuchVersion { slot, version } => {
                write!(f, "no version {version} for slot {slot:?}")
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
