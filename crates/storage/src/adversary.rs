//! Adversarial storage: the malicious server's toolbox.
//!
//! The paper's threat model (§2.3): *"a malicious server may still
//! return a correctly protected but outdated state to T. We call such a
//! consistency violation a rollback attack"*, and *"a malicious server
//! may start multiple instances of a trusted execution context ... The
//! malicious server might supply a different, but valid state to each
//! trusted execution context instance"* — the forking attack.
//!
//! [`RollbackStorage`] implements exactly these powers over a
//! [`VersionedStorage`] history, and [`ForkView`] gives each enclave
//! instance its own divergent branch of that history.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::versioned::{Version, VersionedStorage};
use crate::{Result, StableStorage};

/// What the adversarial storage wrapper currently does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdversaryMode {
    /// Behave like honest storage: serve the latest version.
    #[default]
    Honest,
    /// Serve the fixed historical version on every load (rollback
    /// attack). Stores still append to history.
    ServeVersion(Version),
    /// Serve the version `k` writes before the latest (sliding rollback).
    ServeStale {
        /// How many versions to step back from the latest.
        steps_back: u64,
    },
    /// Acknowledge stores but discard them (lost-write attack — to the
    /// enclave this later looks like a rollback).
    DropWrites,
    /// Freeze the visible state at the moment the mode was set: stores
    /// are retained in history but loads keep returning what was latest
    /// at freeze time.
    Frozen,
    /// Persist only the first `keep` bytes of every store — a crash (or
    /// lying disk) tearing writes mid-record. Against the delta-log
    /// engine this corrupts journal-head and checkpoint overwrites,
    /// which recovery must truncate at the last sealed frame boundary.
    TornWrites {
        /// How many leading bytes of each written blob reach the
        /// medium.
        keep: usize,
    },
    /// Buffer stores in a volatile write cache and flush each *pair* in
    /// reverse order — a disk scheduler reordering flushes. Loads serve
    /// only what was flushed; [`RollbackStorage::drop_buffered`] models
    /// a power failure taking the cache with it, and leaving the mode
    /// flushes the remainder in order.
    ReorderedFlush,
}

#[derive(Debug)]
struct RollbackInner {
    mode: AdversaryMode,
    /// Latest version per slot at the time `Frozen` was engaged.
    frozen_at: std::collections::HashMap<String, Version>,
    /// Stores held in the volatile cache while `ReorderedFlush` is
    /// engaged.
    buffered: Vec<(String, Vec<u8>)>,
}

/// Adversarial [`StableStorage`] wrapper driven by an [`AdversaryMode`].
///
/// The mode can be switched at any point, modelling a server that is
/// correct for a while and then turns malicious.
///
/// # Example
///
/// ```
/// use lcm_storage::{AdversaryMode, RollbackStorage, StableStorage, Version};
///
/// # fn main() -> Result<(), lcm_storage::StorageError> {
/// let storage = RollbackStorage::new();
/// storage.store("state", b"v0")?;
/// storage.store("state", b"v1")?;
///
/// // The server turns malicious: roll the enclave back to v0.
/// storage.set_mode(AdversaryMode::ServeVersion(Version(0)));
/// assert_eq!(storage.load("state")?, Some(b"v0".to_vec()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RollbackStorage {
    history: VersionedStorage,
    inner: Arc<RwLock<RollbackInner>>,
}

impl Default for RollbackStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl RollbackStorage {
    /// Creates an adversarial store starting in [`AdversaryMode::Honest`].
    pub fn new() -> Self {
        Self::over(VersionedStorage::new())
    }

    /// Wraps an existing history.
    pub fn over(history: VersionedStorage) -> Self {
        RollbackStorage {
            history,
            inner: Arc::new(RwLock::new(RollbackInner {
                mode: AdversaryMode::Honest,
                frozen_at: std::collections::HashMap::new(),
                buffered: Vec::new(),
            })),
        }
    }

    /// Switches the adversary's behaviour.
    ///
    /// Leaving [`AdversaryMode::ReorderedFlush`] flushes any store
    /// still sitting in the volatile cache, in its original order (the
    /// host eventually wrote it); call
    /// [`RollbackStorage::drop_buffered`] first to model a power
    /// failure instead.
    pub fn set_mode(&self, mode: AdversaryMode) {
        let mut inner = self.inner.write();
        if matches!(inner.mode, AdversaryMode::ReorderedFlush)
            && !matches!(mode, AdversaryMode::ReorderedFlush)
        {
            for (slot, blob) in std::mem::take(&mut inner.buffered) {
                let _ = self.history.store(&slot, &blob);
            }
        }
        if let AdversaryMode::Frozen = mode {
            // Record the current latest version of every slot.
            let snapshot = self.history.inner.read();
            inner.frozen_at = snapshot
                .slots
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| (k.clone(), Version(v.len() as u64 - 1)))
                .collect();
        }
        inner.mode = mode;
    }

    /// The current adversary mode.
    pub fn mode(&self) -> AdversaryMode {
        self.inner.read().mode
    }

    /// The full retained history, for forking and assertions.
    pub fn history(&self) -> &VersionedStorage {
        &self.history
    }

    /// Discards every store still buffered by
    /// [`AdversaryMode::ReorderedFlush`] — the power failure that takes
    /// the volatile write cache with it. Returns how many writes were
    /// lost.
    pub fn drop_buffered(&self) -> usize {
        std::mem::take(&mut self.inner.write().buffered).len()
    }

    /// Creates a divergent branch view seeded from the given version of
    /// each slot's history (see [`ForkView`]).
    pub fn fork_at(&self, slot: &str, version: Version) -> Result<ForkView> {
        let seed = self.history.load_version(slot, version)?;
        let branch = VersionedStorage::new();
        branch.store(slot, &seed)?;
        Ok(ForkView { branch })
    }
}

impl StableStorage for RollbackStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        let mode = self.inner.read().mode;
        match mode {
            AdversaryMode::DropWrites => Ok(()), // silently discarded
            AdversaryMode::TornWrites { keep } => {
                self.history.store(slot, &blob[..keep.min(blob.len())])
            }
            AdversaryMode::ReorderedFlush => {
                let mut inner = self.inner.write();
                inner.buffered.push((slot.to_string(), blob.to_vec()));
                if inner.buffered.len() == 2 {
                    // The scheduler flushes the pair newest-first.
                    while let Some((s, b)) = inner.buffered.pop() {
                        self.history.store(&s, &b)?;
                    }
                }
                Ok(())
            }
            _ => self.history.store(slot, blob),
        }
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        let inner = self.inner.read();
        match inner.mode {
            AdversaryMode::Honest
            | AdversaryMode::DropWrites
            | AdversaryMode::TornWrites { .. }
            | AdversaryMode::ReorderedFlush => self.history.load(slot),
            AdversaryMode::ServeVersion(v) => match self.history.load_version(slot, v) {
                Ok(blob) => Ok(Some(blob)),
                Err(_) => self.history.load(slot),
            },
            AdversaryMode::ServeStale { steps_back } => match self.history.latest_version(slot) {
                Some(Version(latest)) => {
                    let target = Version(latest.saturating_sub(steps_back));
                    Ok(Some(self.history.load_version(slot, target)?))
                }
                None => Ok(None),
            },
            AdversaryMode::Frozen => match inner.frozen_at.get(slot) {
                Some(&v) => Ok(Some(self.history.load_version(slot, v)?)),
                None => Ok(None),
            },
        }
    }
}

/// One branch of a forked storage history.
///
/// A forking server seeds two (or more) views from the same historical
/// blob and lets different enclave instances evolve them independently
/// — each instance sees a self-consistent but mutually divergent world.
#[derive(Debug, Clone)]
pub struct ForkView {
    branch: VersionedStorage,
}

impl StableStorage for ForkView {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        self.branch.store(slot, blob)
    }
    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        self.branch.load(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> RollbackStorage {
        let s = RollbackStorage::new();
        s.store("state", b"v0").unwrap();
        s.store("state", b"v1").unwrap();
        s.store("state", b"v2").unwrap();
        s
    }

    #[test]
    fn honest_mode_serves_latest() {
        let s = seeded();
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn serve_version_rolls_back() {
        let s = seeded();
        s.set_mode(AdversaryMode::ServeVersion(Version(0)));
        assert_eq!(s.load("state").unwrap().unwrap(), b"v0");
        // New stores still land in history.
        s.store("state", b"v3").unwrap();
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v3");
    }

    #[test]
    fn serve_stale_steps_back_from_latest() {
        let s = seeded();
        s.set_mode(AdversaryMode::ServeStale { steps_back: 1 });
        assert_eq!(s.load("state").unwrap().unwrap(), b"v1");
        s.store("state", b"v3").unwrap();
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn serve_stale_saturates_at_oldest() {
        let s = seeded();
        s.set_mode(AdversaryMode::ServeStale { steps_back: 100 });
        assert_eq!(s.load("state").unwrap().unwrap(), b"v0");
    }

    #[test]
    fn drop_writes_discards_silently() {
        let s = seeded();
        s.set_mode(AdversaryMode::DropWrites);
        s.store("state", b"v3").unwrap(); // vanishes
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn frozen_pins_visible_state() {
        let s = seeded();
        s.set_mode(AdversaryMode::Frozen);
        s.store("state", b"v3").unwrap(); // retained but invisible
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v3");
    }

    #[test]
    fn frozen_unknown_slot_is_none() {
        let s = seeded();
        s.set_mode(AdversaryMode::Frozen);
        assert_eq!(s.load("other").unwrap(), None);
    }

    #[test]
    fn fork_views_diverge() {
        let s = seeded();
        let fork_a = s.fork_at("state", Version(1)).unwrap();
        let fork_b = s.fork_at("state", Version(1)).unwrap();
        assert_eq!(fork_a.load("state").unwrap().unwrap(), b"v1");
        fork_a.store("state", b"a-branch").unwrap();
        fork_b.store("state", b"b-branch").unwrap();
        assert_eq!(fork_a.load("state").unwrap().unwrap(), b"a-branch");
        assert_eq!(fork_b.load("state").unwrap().unwrap(), b"b-branch");
        // Main history is untouched by branch writes.
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn fork_at_missing_version_fails() {
        let s = seeded();
        assert!(s.fork_at("state", Version(17)).is_err());
    }

    #[test]
    fn torn_writes_persist_only_a_prefix() {
        let s = seeded();
        s.set_mode(AdversaryMode::TornWrites { keep: 2 });
        s.store("state", b"v3-long-record").unwrap();
        assert_eq!(s.load("state").unwrap().unwrap(), b"v3");
        // Shorter than the tear point: stored whole.
        s.store("state", b"x").unwrap();
        assert_eq!(s.load("state").unwrap().unwrap(), b"x");
    }

    #[test]
    fn reordered_flush_commits_pairs_newest_first() {
        let s = seeded();
        s.set_mode(AdversaryMode::ReorderedFlush);
        s.store("state", b"older").unwrap();
        // Still in the volatile cache: loads see the pre-mode state.
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
        s.store("state", b"newer").unwrap();
        // The pair flushed in reverse: "older" is now the visible tip.
        assert_eq!(s.load("state").unwrap().unwrap(), b"older");
    }

    #[test]
    fn reordered_flush_remainder_flushes_on_mode_change() {
        let s = seeded();
        s.set_mode(AdversaryMode::ReorderedFlush);
        s.store("state", b"v3").unwrap();
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v3");
    }

    #[test]
    fn reordered_flush_power_failure_loses_the_cache() {
        let s = seeded();
        s.set_mode(AdversaryMode::ReorderedFlush);
        s.store("state", b"v3").unwrap();
        assert_eq!(s.drop_buffered(), 1);
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn mode_accessor_reports_current_mode() {
        let s = seeded();
        assert_eq!(s.mode(), AdversaryMode::Honest);
        s.set_mode(AdversaryMode::DropWrites);
        assert_eq!(s.mode(), AdversaryMode::DropWrites);
    }
}
