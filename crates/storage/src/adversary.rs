//! Adversarial storage: the malicious server's toolbox.
//!
//! The paper's threat model (§2.3): *"a malicious server may still
//! return a correctly protected but outdated state to T. We call such a
//! consistency violation a rollback attack"*, and *"a malicious server
//! may start multiple instances of a trusted execution context ... The
//! malicious server might supply a different, but valid state to each
//! trusted execution context instance"* — the forking attack.
//!
//! [`RollbackStorage`] implements exactly these powers over a
//! [`VersionedStorage`] history, and [`ForkView`] gives each enclave
//! instance its own divergent branch of that history.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::versioned::{Version, VersionedStorage};
use crate::{Result, StableStorage};

/// What the adversarial storage wrapper currently does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdversaryMode {
    /// Behave like honest storage: serve the latest version.
    #[default]
    Honest,
    /// Serve the fixed historical version on every load (rollback
    /// attack). Stores still append to history.
    ServeVersion(Version),
    /// Serve the version `k` writes before the latest (sliding rollback).
    ServeStale {
        /// How many versions to step back from the latest.
        steps_back: u64,
    },
    /// Acknowledge stores but discard them (lost-write attack — to the
    /// enclave this later looks like a rollback).
    DropWrites,
    /// Freeze the visible state at the moment the mode was set: stores
    /// are retained in history but loads keep returning what was latest
    /// at freeze time.
    Frozen,
}

#[derive(Debug)]
struct RollbackInner {
    mode: AdversaryMode,
    /// Latest version per slot at the time `Frozen` was engaged.
    frozen_at: std::collections::HashMap<String, Version>,
}

/// Adversarial [`StableStorage`] wrapper driven by an [`AdversaryMode`].
///
/// The mode can be switched at any point, modelling a server that is
/// correct for a while and then turns malicious.
///
/// # Example
///
/// ```
/// use lcm_storage::{AdversaryMode, RollbackStorage, StableStorage, Version};
///
/// # fn main() -> Result<(), lcm_storage::StorageError> {
/// let storage = RollbackStorage::new();
/// storage.store("state", b"v0")?;
/// storage.store("state", b"v1")?;
///
/// // The server turns malicious: roll the enclave back to v0.
/// storage.set_mode(AdversaryMode::ServeVersion(Version(0)));
/// assert_eq!(storage.load("state")?, Some(b"v0".to_vec()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RollbackStorage {
    history: VersionedStorage,
    inner: Arc<RwLock<RollbackInner>>,
}

impl Default for RollbackStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl RollbackStorage {
    /// Creates an adversarial store starting in [`AdversaryMode::Honest`].
    pub fn new() -> Self {
        Self::over(VersionedStorage::new())
    }

    /// Wraps an existing history.
    pub fn over(history: VersionedStorage) -> Self {
        RollbackStorage {
            history,
            inner: Arc::new(RwLock::new(RollbackInner {
                mode: AdversaryMode::Honest,
                frozen_at: std::collections::HashMap::new(),
            })),
        }
    }

    /// Switches the adversary's behaviour.
    pub fn set_mode(&self, mode: AdversaryMode) {
        let mut inner = self.inner.write();
        if let AdversaryMode::Frozen = mode {
            // Record the current latest version of every slot.
            let snapshot = self.history.inner.read();
            inner.frozen_at = snapshot
                .slots
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| (k.clone(), Version(v.len() as u64 - 1)))
                .collect();
        }
        inner.mode = mode;
    }

    /// The current adversary mode.
    pub fn mode(&self) -> AdversaryMode {
        self.inner.read().mode
    }

    /// The full retained history, for forking and assertions.
    pub fn history(&self) -> &VersionedStorage {
        &self.history
    }

    /// Creates a divergent branch view seeded from the given version of
    /// each slot's history (see [`ForkView`]).
    pub fn fork_at(&self, slot: &str, version: Version) -> Result<ForkView> {
        let seed = self.history.load_version(slot, version)?;
        let branch = VersionedStorage::new();
        branch.store(slot, &seed)?;
        Ok(ForkView { branch })
    }
}

impl StableStorage for RollbackStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        match self.inner.read().mode {
            AdversaryMode::DropWrites => Ok(()), // silently discarded
            _ => self.history.store(slot, blob),
        }
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        let inner = self.inner.read();
        match inner.mode {
            AdversaryMode::Honest | AdversaryMode::DropWrites => self.history.load(slot),
            AdversaryMode::ServeVersion(v) => match self.history.load_version(slot, v) {
                Ok(blob) => Ok(Some(blob)),
                Err(_) => self.history.load(slot),
            },
            AdversaryMode::ServeStale { steps_back } => match self.history.latest_version(slot) {
                Some(Version(latest)) => {
                    let target = Version(latest.saturating_sub(steps_back));
                    Ok(Some(self.history.load_version(slot, target)?))
                }
                None => Ok(None),
            },
            AdversaryMode::Frozen => match inner.frozen_at.get(slot) {
                Some(&v) => Ok(Some(self.history.load_version(slot, v)?)),
                None => Ok(None),
            },
        }
    }
}

/// One branch of a forked storage history.
///
/// A forking server seeds two (or more) views from the same historical
/// blob and lets different enclave instances evolve them independently
/// — each instance sees a self-consistent but mutually divergent world.
#[derive(Debug, Clone)]
pub struct ForkView {
    branch: VersionedStorage,
}

impl StableStorage for ForkView {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        self.branch.store(slot, blob)
    }
    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        self.branch.load(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> RollbackStorage {
        let s = RollbackStorage::new();
        s.store("state", b"v0").unwrap();
        s.store("state", b"v1").unwrap();
        s.store("state", b"v2").unwrap();
        s
    }

    #[test]
    fn honest_mode_serves_latest() {
        let s = seeded();
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn serve_version_rolls_back() {
        let s = seeded();
        s.set_mode(AdversaryMode::ServeVersion(Version(0)));
        assert_eq!(s.load("state").unwrap().unwrap(), b"v0");
        // New stores still land in history.
        s.store("state", b"v3").unwrap();
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v3");
    }

    #[test]
    fn serve_stale_steps_back_from_latest() {
        let s = seeded();
        s.set_mode(AdversaryMode::ServeStale { steps_back: 1 });
        assert_eq!(s.load("state").unwrap().unwrap(), b"v1");
        s.store("state", b"v3").unwrap();
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn serve_stale_saturates_at_oldest() {
        let s = seeded();
        s.set_mode(AdversaryMode::ServeStale { steps_back: 100 });
        assert_eq!(s.load("state").unwrap().unwrap(), b"v0");
    }

    #[test]
    fn drop_writes_discards_silently() {
        let s = seeded();
        s.set_mode(AdversaryMode::DropWrites);
        s.store("state", b"v3").unwrap(); // vanishes
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn frozen_pins_visible_state() {
        let s = seeded();
        s.set_mode(AdversaryMode::Frozen);
        s.store("state", b"v3").unwrap(); // retained but invisible
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
        s.set_mode(AdversaryMode::Honest);
        assert_eq!(s.load("state").unwrap().unwrap(), b"v3");
    }

    #[test]
    fn frozen_unknown_slot_is_none() {
        let s = seeded();
        s.set_mode(AdversaryMode::Frozen);
        assert_eq!(s.load("other").unwrap(), None);
    }

    #[test]
    fn fork_views_diverge() {
        let s = seeded();
        let fork_a = s.fork_at("state", Version(1)).unwrap();
        let fork_b = s.fork_at("state", Version(1)).unwrap();
        assert_eq!(fork_a.load("state").unwrap().unwrap(), b"v1");
        fork_a.store("state", b"a-branch").unwrap();
        fork_b.store("state", b"b-branch").unwrap();
        assert_eq!(fork_a.load("state").unwrap().unwrap(), b"a-branch");
        assert_eq!(fork_b.load("state").unwrap().unwrap(), b"b-branch");
        // Main history is untouched by branch writes.
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn fork_at_missing_version_fails() {
        let s = seeded();
        assert!(s.fork_at("state", Version(17)).is_err());
    }

    #[test]
    fn mode_accessor_reports_current_mode() {
        let s = seeded();
        assert_eq!(s.mode(), AdversaryMode::Honest);
        s.set_mode(AdversaryMode::DropWrites);
        assert_eq!(s.mode(), AdversaryMode::DropWrites);
    }
}
