//! Version-retaining storage: the substrate for rollback adversaries.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{Result, StableStorage, StorageError};

/// Index of one stored version of a slot (0 = first store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version(pub u64);

#[derive(Debug, Default)]
pub(crate) struct VersionedInner {
    pub(crate) slots: HashMap<String, Vec<Vec<u8>>>,
}

/// A blob store that retains *every* version ever written.
///
/// Honest use (`load`) returns the latest version, making this a drop-in
/// [`StableStorage`]. The retained history is what a malicious server
/// exploits: [`VersionedStorage::load_version`] fetches any past state,
/// which [`crate::RollbackStorage`] serves to enclaves as if it were
/// current.
///
/// # Example
///
/// ```
/// use lcm_storage::{StableStorage, Version, VersionedStorage};
///
/// # fn main() -> Result<(), lcm_storage::StorageError> {
/// let storage = VersionedStorage::new();
/// storage.store("state", b"epoch-1")?;
/// storage.store("state", b"epoch-2")?;
/// assert_eq!(storage.load("state")?, Some(b"epoch-2".to_vec()));
/// assert_eq!(storage.load_version("state", Version(0))?, b"epoch-1".to_vec());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionedStorage {
    pub(crate) inner: Arc<RwLock<VersionedInner>>,
}

impl VersionedStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a specific historical version of `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoSuchVersion`] when the slot has fewer
    /// versions.
    pub fn load_version(&self, slot: &str, version: Version) -> Result<Vec<u8>> {
        let inner = self.inner.read();
        inner
            .slots
            .get(slot)
            .and_then(|versions| versions.get(version.0 as usize))
            .cloned()
            .ok_or_else(|| StorageError::NoSuchVersion {
                slot: slot.to_owned(),
                version: version.0,
            })
    }

    /// Number of versions stored for `slot` (0 when never stored).
    pub fn version_count(&self, slot: &str) -> u64 {
        self.inner
            .read()
            .slots
            .get(slot)
            .map_or(0, |v| v.len() as u64)
    }

    /// The latest version index for `slot`, if any.
    pub fn latest_version(&self, slot: &str) -> Option<Version> {
        match self.version_count(slot) {
            0 => None,
            n => Some(Version(n - 1)),
        }
    }
}

impl StableStorage for VersionedStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        self.inner
            .write()
            .slots
            .entry(slot.to_owned())
            .or_default()
            .push(blob.to_vec());
        Ok(())
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        Ok(self
            .inner
            .read()
            .slots
            .get(slot)
            .and_then(|versions| versions.last())
            .cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_wins_for_honest_load() {
        let s = VersionedStorage::new();
        s.store("a", b"1").unwrap();
        s.store("a", b"2").unwrap();
        s.store("a", b"3").unwrap();
        assert_eq!(s.load("a").unwrap().unwrap(), b"3");
    }

    #[test]
    fn history_is_retained() {
        let s = VersionedStorage::new();
        s.store("a", b"1").unwrap();
        s.store("a", b"2").unwrap();
        assert_eq!(s.load_version("a", Version(0)).unwrap(), b"1");
        assert_eq!(s.load_version("a", Version(1)).unwrap(), b"2");
        assert_eq!(s.version_count("a"), 2);
        assert_eq!(s.latest_version("a"), Some(Version(1)));
    }

    #[test]
    fn missing_version_errors() {
        let s = VersionedStorage::new();
        s.store("a", b"1").unwrap();
        assert!(matches!(
            s.load_version("a", Version(5)),
            Err(StorageError::NoSuchVersion { .. })
        ));
        assert!(s.load_version("never", Version(0)).is_err());
    }

    #[test]
    fn empty_slot_has_no_latest() {
        let s = VersionedStorage::new();
        assert_eq!(s.latest_version("a"), None);
        assert_eq!(s.load("a").unwrap(), None);
    }

    #[test]
    fn clones_share_history() {
        let s = VersionedStorage::new();
        let t = s.clone();
        s.store("a", b"1").unwrap();
        assert_eq!(t.version_count("a"), 1);
    }
}
