//! Honest storage with modelled device latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::{Result, StableStorage};

/// Wraps an honest store, sleeping for a fixed duration on every
/// `store` (and optionally `load`) — a deterministic stand-in for
/// write+fsync latency when measuring *real* concurrency.
///
/// The discrete-event simulator charges disk costs virtually
/// ([`crate::DiskModel`]); this wrapper charges them in wall-clock
/// time, which is what the pipelined server's background writer
/// overlaps with execution. Benches and the simulator-validation tests
/// use it to compare the synchronous and asynchronous-write modes
/// under identical storage cost.
#[derive(Debug)]
pub struct DelayedStorage<S> {
    inner: S,
    store_delay: Duration,
    load_delay: Duration,
    stores: AtomicU64,
    loads: AtomicU64,
}

impl<S: StableStorage> DelayedStorage<S> {
    /// Wraps `inner`, sleeping `store_delay` on every write.
    pub fn new(inner: S, store_delay: Duration) -> Self {
        DelayedStorage {
            inner,
            store_delay,
            load_delay: Duration::ZERO,
            stores: AtomicU64::new(0),
            loads: AtomicU64::new(0),
        }
    }

    /// Also sleeps `load_delay` on every read.
    pub fn with_load_delay(mut self, load_delay: Duration) -> Self {
        self.load_delay = load_delay;
        self
    }

    /// Number of `store` calls served.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::SeqCst)
    }

    /// Number of `load` calls served.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::SeqCst)
    }

    /// The configured per-store delay.
    pub fn store_delay(&self) -> Duration {
        self.store_delay
    }
}

impl<S: StableStorage> StableStorage for DelayedStorage<S> {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        if !self.store_delay.is_zero() {
            std::thread::sleep(self.store_delay);
        }
        self.stores.fetch_add(1, Ordering::SeqCst);
        self.inner.store(slot, blob)
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        if !self.load_delay.is_zero() {
            std::thread::sleep(self.load_delay);
        }
        self.loads.fetch_add(1, Ordering::SeqCst);
        self.inner.load(slot)
    }

    fn delta_capable(&self) -> bool {
        self.inner.delta_capable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStorage;
    use std::time::Instant;

    #[test]
    fn delays_writes_and_counts() {
        let s = DelayedStorage::new(MemoryStorage::new(), Duration::from_millis(5));
        let t0 = Instant::now();
        s.store("slot", b"blob").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(s.stores(), 1);
        assert_eq!(s.load("slot").unwrap().unwrap(), b"blob");
        assert_eq!(s.loads(), 1);
    }

    #[test]
    fn zero_delay_is_passthrough() {
        let s = DelayedStorage::new(MemoryStorage::new(), Duration::ZERO);
        s.store("slot", b"x").unwrap();
        assert_eq!(s.load("slot").unwrap().unwrap(), b"x");
    }
}
