//! Honest file-backed storage.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::{Result, StableStorage};

/// An honest blob store persisting each slot as a file in a directory.
///
/// Used by examples that demonstrate recovery across process restarts.
/// Writes go through a temporary file followed by a rename so a crash
/// mid-write never leaves a torn blob (the paper's correct server is
/// assumed to write atomically; torn writes would surface as unseal
/// failures, not rollbacks).
#[derive(Debug, Clone)]
pub struct FileStorage {
    dir: PathBuf,
}

impl FileStorage {
    /// Opens (creating if necessary) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(FileStorage {
            dir: dir.as_ref().to_owned(),
        })
    }

    fn path_for(&self, slot: &str) -> PathBuf {
        // Encode the slot name so arbitrary strings map to safe file names.
        let mut name = String::with_capacity(slot.len() + 5);
        for b in slot.bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => name.push(b as char),
                other => {
                    name.push('%');
                    name.push_str(&format!("{other:02x}"));
                }
            }
        }
        name.push_str(".blob");
        self.dir.join(name)
    }
}

impl StableStorage for FileStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> Result<()> {
        let path = self.path_for(slot);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(blob)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn load(&self, slot: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.path_for(slot)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lcm-storage-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_overwrite() {
        let dir = tempdir("roundtrip");
        let s = FileStorage::open(&dir).unwrap();
        s.store("state", b"v1").unwrap();
        s.store("state", b"v2").unwrap();
        assert_eq!(s.load("state").unwrap().unwrap(), b"v2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_is_none() {
        let dir = tempdir("missing");
        let s = FileStorage::open(&dir).unwrap();
        assert_eq!(s.load("never-stored").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = tempdir("reopen");
        {
            let s = FileStorage::open(&dir).unwrap();
            s.store("state", b"persisted").unwrap();
        }
        let s = FileStorage::open(&dir).unwrap();
        assert_eq!(s.load("state").unwrap().unwrap(), b"persisted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slot_names_with_special_chars() {
        let dir = tempdir("special");
        let s = FileStorage::open(&dir).unwrap();
        s.store("slot/with:odd*chars", b"data").unwrap();
        assert_eq!(s.load("slot/with:odd*chars").unwrap().unwrap(), b"data");
        // A visually similar slot must not alias.
        assert_eq!(s.load("slot-with-odd-chars").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
