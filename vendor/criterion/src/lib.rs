//! Offline shim for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`] with
//! `bench_function` and `benchmark_group`, groups with `throughput`,
//! `bench_function`, `bench_with_input` and `finish`, [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: a short warm-up, then timed
//! batches until ~200 ms elapses, reporting the mean ns/iter (and
//! derived throughput when declared). Good enough to compare orders of
//! magnitude; not a statistics engine. `CRITERION_QUICK=1` shortens
//! measurement for smoke runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark registry and driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Criterion {
            measure_for: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work volume for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b);
        b.report(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            self.throughput,
        );
        self
    }

    /// Runs one benchmark receiving a borrowed input.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b, input);
        b.report(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            self.throughput,
        );
        self
    }

    /// Ends the group (reporting happens per-bench; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion of `&str`/`String`/[`BenchmarkId`] into a display id.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared per-iteration work volume.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    measure_for: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher {
            measure_for,
            mean_ns: f64::NAN,
            iters: 0,
        }
    }

    /// Times the closure: short warm-up, then batches until the
    /// measurement budget elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: grow until one batch takes >= 1 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measurement.
        let deadline = Instant::now() + self.measure_for;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<44} (no measurement: bencher closure never called iter)");
            return;
        }
        let rate = match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / self.mean_ns * 1e9 / (1u64 << 30) as f64;
                format!("  {gib:9.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / self.mean_ns * 1e9 / 1e6;
                format!("  {meps:9.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{name:<44} {:>12.1} ns/iter  ({} iters){rate}",
            self.mean_ns, self.iters
        );
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        compile_error!("criterion shim: config-form criterion_group! is not supported");
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
    }

    #[test]
    fn groups_and_ids_compose() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        let data = vec![1u8; 1024];
        group.bench_with_input(BenchmarkId::new("sum", 1024), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter("alt"), |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
