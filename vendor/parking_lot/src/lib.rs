//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's
//! non-poisoning API: `lock()`/`read()`/`write()` return guards
//! directly (a poisoned std lock is recovered, matching parking_lot's
//! behaviour of not poisoning at all).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }
}
