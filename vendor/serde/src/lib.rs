//! Offline shim for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros from
//! the `serde_derive` shim. The trait definitions exist (empty) so
//! `use serde::{Serialize, Deserialize}` resolves in both the macro
//! and trait namespaces, but no impls are generated and no data
//! formats exist — the workspace serializes exclusively through its
//! own wire codec.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`. Never implemented
/// or required by this workspace.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`. Never
/// implemented or required by this workspace.
pub trait Deserialize<'de> {}
