//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`RngCore`], [`SeedableRng`], the extension trait [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`rngs::StdRng`] (a deterministic
//! xoshiro256++ generator seeded via SplitMix64), and [`thread_rng`].
//!
//! The `StdRng` stream differs from upstream rand's ChaCha12-based
//! `StdRng`, but is fully deterministic for a given seed, which is the
//! property the workspace's deterministic TEE world relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

pub use rngs::StdRng;

/// Core random-number-generator interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
    /// Creates a generator from OS-ish entropy (time + counter here).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Types that can be sampled uniformly from a generator (the shim's
/// stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) with rejection sampling
/// to avoid modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type uniformly at random.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seeded from time-and-counter entropy; distinct per call.
pub struct ThreadRng(StdRng);

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Returns a generator seeded from process entropy. Unlike upstream
/// rand this is not cryptographically secure; the workspace only uses
/// it where nondeterminism (not secrecy) is required, and all
/// security-relevant keys flow through the deterministic TEE world.
pub fn thread_rng() -> ThreadRng {
    ThreadRng(StdRng::seed_from_u64(entropy_seed()))
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    // SplitMix64 finalizer over the mixed inputs.
    let mut z = nanos ^ count.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(b' '..=b'~');
            assert!((b' '..=b'~').contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u8_inclusive_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen_range(0u8..=255) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn thread_rng_streams_differ() {
        assert_ne!(thread_rng().next_u64(), thread_rng().next_u64());
    }
}
