//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (Blackman & Vigna), seeded via
/// the SplitMix64 expander as the algorithm's authors recommend.
///
/// Stands in for rand's `StdRng`: same determinism contract (a given
/// seed always yields the same stream), different stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix_next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            Self::splitmix_next(&mut sm),
            Self::splitmix_next(&mut sm),
            Self::splitmix_next(&mut sm),
            Self::splitmix_next(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector computed from the canonical C implementation of
    /// xoshiro256++ with state seeded by SplitMix64(0).
    #[test]
    fn matches_reference_stream_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // Self-consistency: re-seeding reproduces the stream.
        let mut rng2 = StdRng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        // And the state must have diverged from the seed expansion.
        assert_ne!(first[0], first[1]);
    }
}
