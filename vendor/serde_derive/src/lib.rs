//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of
//! types for API compatibility, but all real serialization goes through
//! `lcm_core::codec`; no serde data format is ever linked. The derives
//! therefore expand to nothing. `attributes(serde)` is still declared
//! so `#[serde(...)]` field attributes would not be rejected.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
