//! Collection strategies.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A collection-size specification, convertible from ranges and exact
/// sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
/// `Clone` but deliberately not `Copy`, mirroring upstream proptest so
/// call sites keep their explicit `.clone()`s.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values from `element` with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap<K, V>`.
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate keys collapse, matching upstream semantics where the
        // requested size is an upper bound under key collisions.
        let len = self.size.sample(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// Generates `BTreeMap`s with keys from `key`, values from `value`, and
/// entry counts in `size` (deduplicated by key).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_respects_upper_bound() {
        let s = btree_map(any::<u8>(), any::<u8>(), 0..16);
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).len() < 16);
        }
    }
}
