//! The deterministic test runner.

use std::fmt;

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG driving value generation. Deterministically seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is regenerated.
    Reject(String),
}

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejects (discards) the current case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; mirrors the upstream fields this workspace
/// uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
    /// Base seed; combined with the test name. Overridable via
    /// `PROPTEST_SEED`.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
            seed: 0x1c3a_11ec_71fe_5eed,
        }
    }
}

impl ProptestConfig {
    /// Returns the default configuration with `cases` overridden.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Drives a strategy through `cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Runs the property over generated inputs; panics on the first
    /// failing case with the seed, case index, and input.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        let seed = resolve_seed(self.config.seed, self.name);
        let cases = resolve_cases(self.config.cases);
        let mut rng = TestRng::new(seed);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < cases {
            // Snapshot the RNG so a failing input can be re-generated
            // for reporting; passing cases skip the Debug rendering.
            let before = rng.clone();
            let input = strategy.generate(&mut rng);
            match test(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many prop_assume! rejections ({}): {}",
                            self.name, rejected, why
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    let mut replay = before;
                    let described = format!("{:?}", strategy.generate(&mut replay));
                    panic!(
                        "proptest '{}' failed after {} passing case(s)\n\
                         {}\n\
                         input: {}\n\
                         reproduce with PROPTEST_SEED={}",
                        self.name, passed, msg, described, seed
                    );
                }
            }
        }
    }
}

fn resolve_seed(base: u64, name: &str) -> u64 {
    // The env value is taken verbatim as the resolved seed so that the
    // "reproduce with PROPTEST_SEED={seed}" value printed on failure
    // replays the exact stream (it already incorporates the name hash).
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    base ^ fnv1a(name.as_bytes())
}

fn resolve_cases(configured: u32) -> u32 {
    if let Ok(s) = std::env::var("PROPTEST_CASES") {
        if let Ok(v) = s.parse::<u32>() {
            return v.max(1);
        }
    }
    configured.max(1)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn counts_only_passing_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "counts");
        let mut calls = 0u32;
        runner.run(&(any::<u8>(),), |_v| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    fn rejections_regenerate() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "rejects");
        let mut evens = 0u32;
        runner.run(&(any::<u8>(),), |(v,)| {
            if v % 2 == 1 {
                return Err(TestCaseError::reject("odd"));
            }
            evens += 1;
            Ok(())
        });
        assert_eq!(evens, 5);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "fails");
        runner.run(&(0u32..10,), |(v,)| {
            if v < 100 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn failure_report_replays_the_failing_input() {
        // The panic message re-generates the input from an RNG snapshot;
        // it must describe the value that actually failed.
        let result = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(1000), "replay");
            runner.run(&(0u64..1_000_000,), |(v,)| {
                if v % 7 == 3 {
                    Err(TestCaseError::fail("hit the witness class"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        let reported: u64 = msg
            .split("input: (")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparseable failure report: {msg}"));
        assert_eq!(
            reported % 7,
            3,
            "reported input is not the failing one: {msg}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "det");
            runner.run(&(any::<u64>(),), |(v,)| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
