//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Object-safe for use in [`Union`]; the combinators require `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy that value
    /// selects.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values not satisfying the predicate
    /// (regenerating up to a bounded number of attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; used by `prop_oneof!` to unify arm types.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies; see `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if roll < w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weighted roll exceeded total weight")
    }
}

// ---------------------------------------------------------------------------
// any::<T>() — the Arbitrary machinery.

/// Types with a canonical strategy over their whole domain.
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical whole-domain strategy for scalar types.
#[derive(Clone, Copy, Debug)]
pub struct ArbScalar<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for ArbScalar<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Bias toward boundary values the way proptest's
                // binary-search domains make small/extreme values likely.
                match rng.gen_range(0u32..8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => 1 as $t,
                    _ => rng.gen::<$t>(),
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = ArbScalar<$t>;
            fn arbitrary() -> Self::Strategy {
                ArbScalar(PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for ArbScalar<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}
impl Arbitrary for bool {
    type Strategy = ArbScalar<bool>;
    fn arbitrary() -> Self::Strategy {
        ArbScalar(PhantomData)
    }
}

impl Strategy for ArbScalar<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}
impl Arbitrary for f64 {
    type Strategy = ArbScalar<f64>;
    fn arbitrary() -> Self::Strategy {
        ArbScalar(PhantomData)
    }
}

/// Canonical strategy for byte arrays of any length.
#[derive(Clone, Copy, Debug)]
pub struct ArbArray<const N: usize>;

impl<const N: usize> Strategy for ArbArray<N> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rand::RngCore::fill_bytes(rng, &mut out);
        out
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = ArbArray<N>;
    fn arbitrary() -> Self::Strategy {
        ArbArray
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T>
where
    T::Strategy: 'static,
    T: 'static,
{
    type Strategy = crate::collection::VecStrategy<T::Strategy>;
    fn arbitrary() -> Self::Strategy {
        crate::collection::vec(T::arbitrary(), 0..64)
    }
}

impl<T: Arbitrary> Arbitrary for Option<T>
where
    T::Strategy: 'static,
{
    type Strategy = crate::option::OptionStrategy<T::Strategy>;
    fn arbitrary() -> Self::Strategy {
        crate::option::of(T::arbitrary())
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies.

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples of strategies.

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// Simple-regex string strategies (`"[a-z]{1,8}"`, `".{1,32}"`, ...).

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// Generates a string matching a small regex subset: a sequence of
/// atoms, each a literal character, `.`, or a `[...]` class (ranges and
/// literals), optionally followed by `{m}`, `{m,n}`, `*`, `+`, or `?`.
/// Patterns outside this subset panic, identifying the pattern.
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom.
        let atom: Atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "trailing backslash in pattern {pattern:?}"
                );
                i += 2;
                Atom::Class(vec![chars[i - 1]])
            }
            c => {
                assert!(
                    !"(){}|*+?$^".contains(c),
                    "unsupported regex construct {c:?} in pattern {pattern:?}"
                );
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Parse an optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim()
                        .parse::<usize>()
                        .expect("bad repetition lower bound"),
                    n.trim()
                        .parse::<usize>()
                        .expect("bad repetition upper bound"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad repetition count");
                    (m, m)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let op = chars[i];
            i += 1;
            match op {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(atom.sample(rng));
        }
    }
    out
}

enum Atom {
    Any,
    Class(Vec<char>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            // '.' — printable ASCII, the slice proptest draws from most.
            Atom::Any => char::from(rng.gen_range(0x20u8..=0x7e)),
            Atom::Class(set) => set[rng.gen_range(0..set.len())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::new(1)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (5u32..10).generate(&mut r);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = ".{1,32}".generate(&mut r);
            assert!((1..=32).contains(&s.len()));

            let s = "[0-9.]{1,6}".generate(&mut r);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_digit() || c == '.'));
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let u = crate::prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let mut r = rng();
        let trues = (0..1000).filter(|_| u.generate(&mut r)).count();
        assert!(trues > 700, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (0u8..10).prop_map(|v| v * 2).prop_flat_map(|v| 0..(v + 1));
        let mut r = rng();
        for _ in 0..100 {
            assert!(s.generate(&mut r) < 20);
        }
    }
}
