//! `Option<T>` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `None` about a quarter of the time, `Some` of the
/// inner strategy otherwise (upstream's default weighting).
#[derive(Clone, Copy, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Wraps a strategy to produce optional values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn produces_both_variants() {
        let s = of(any::<u8>());
        let mut rng = TestRng::new(5);
        let values: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }
}
