//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros,
//! [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`/`prop_filter`, `any::<T>()` for
//! integers, `bool`, byte arrays and `Vec<u8>`, integer-range and
//! simple-regex string strategies, [`collection::vec`],
//! [`collection::btree_map`], [`option::of`], and a deterministic
//! [`test_runner::TestRunner`].
//!
//! Differences from upstream: **no shrinking** (failures report the
//! full generated input, seed, and case index) and **deterministic
//! seeding** — each test's RNG seed is derived from its name, so runs
//! are reproducible without `proptest-regressions/` files. Set
//! `PROPTEST_SEED=<u64>` to explore different streams, and
//! `PROPTEST_CASES=<u32>` to override the case count globally.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with no panic unwinding through generated values) if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Discards the current case (it is regenerated, not counted) if the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted (or unweighted) union of strategies producing one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// item expands to a `#[test]` (the attribute is written at the call
/// site and re-emitted) running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(&strategy, |($($arg,)+)| {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                result
            });
        }
    )*};
}
