//! End-to-end integration tests across the full stack:
//! clients ⇄ (adversary-controllable links) ⇄ host server ⇄ enclave ⇄
//! sealed storage.
//!
//! Every scenario runs against every server mode — the synchronous
//! `LcmServer` loop, the asynchronous-write `PipelinedServer`, and the
//! sharded fan-out at 1 and 4 shards — via the `all_modes!` wrappers
//! at the bottom. Under sharding, sequence numbers and stability are
//! per shard, so a few arithmetic assertions are scoped to the
//! single-shard modes.

mod common;

use std::sync::Arc;

use common::{all_modes, mk_client, mk_server, Mode};
use lcm::core::admin::AdminHandle;
use lcm::core::server::{BatchServer, LcmServer};
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::core::verify::{check_single_history, check_stable_prefix};
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::{KvOp, KvResult};
use lcm::kvs::store::KvStore;
use lcm::net::Duplex;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

fn setup(
    mode: Mode,
    n_clients: u32,
    batch: usize,
    seed: u64,
) -> (TeeWorld, Box<dyn BatchServer>, AdminHandle, Vec<KvsClient>) {
    let world = TeeWorld::new_deterministic(seed);
    let mut server = mk_server::<KvStore>(mode, &world, 1, Arc::new(MemoryStorage::new()), batch);
    assert!(server.boot().unwrap());
    let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let clients = ids
        .iter()
        .map(|&id| {
            let mut c = mk_client(mode, id, admin.client_key());
            c.lcm_mut().set_recording(true);
            c
        })
        .collect();
    (world, server, admin, clients)
}

fn many_rounds_many_clients_stability_converges(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 5, 16, 1);
    // 10 rounds of everyone writing then reading.
    for round in 0..10u32 {
        for (i, c) in clients.iter_mut().enumerate() {
            let key = format!("key-{i}");
            c.put(&mut server, key.as_bytes(), &round.to_be_bytes())
                .unwrap();
        }
    }
    // After the last round every client checks its watermark: with a
    // single sequence space, ops from earlier rounds must be
    // majority-stable. (Sharded: stability is per shard and a shard
    // only stabilizes what a majority of the whole group acknowledged
    // *there*, so the absolute bound applies to 1-shard modes.)
    for c in clients.iter_mut() {
        let done = c.put(&mut server, b"final", b"x").unwrap();
        if mode.shards() == 1 {
            assert!(
                done.stable.0 >= 40,
                "client {} watermark {} too low",
                c.lcm().id(),
                done.stable
            );
        }
    }
    // Global history consistency (omniscient check, per shard).
    let views: Vec<&[_]> = clients.iter().map(|c| c.lcm().records()).collect();
    check_single_history(&views).unwrap();
    check_stable_prefix(&views).unwrap();
}

fn reads_of_other_clients_writes_are_linearized(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 3, 4, 2);
    clients[0].put(&mut server, b"x", b"from-0").unwrap();
    let v = clients[1].get(&mut server, b"x").unwrap();
    assert_eq!(v.unwrap(), b"from-0");
    clients[1].put(&mut server, b"x", b"from-1").unwrap();
    let v = clients[2].get(&mut server, b"x").unwrap();
    assert_eq!(v.unwrap(), b"from-1");
}

fn batched_and_unbatched_servers_agree(mode: Mode) {
    let run = |batch: usize| {
        let (_w, mut server, _a, mut clients) = setup(mode, 2, batch, 3);
        let mut results = Vec::new();
        for i in 0..20u32 {
            let c = &mut clients[(i % 2) as usize];
            let done = c
                .run(
                    &mut server,
                    &KvOp::Put(b"k".to_vec(), i.to_be_bytes().to_vec()),
                )
                .unwrap();
            results.push((done.completion.seq, done.result));
        }
        let v = clients[0].get(&mut server, b"k").unwrap();
        (results, v)
    };
    // Same sequence numbers and final value regardless of batching.
    assert_eq!(run(1), run(16));
}

fn interleaved_batch_replies_route_correctly(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 4, 16, 4);
    // All four clients submit before any processing happens: one batch.
    let wires: Vec<_> = clients
        .iter_mut()
        .enumerate()
        .map(|(i, c)| {
            c.invoke_wire(&KvOp::Put(format!("k{i}").into_bytes(), vec![i as u8]))
                .unwrap()
        })
        .collect();
    for w in wires {
        server.submit(w);
    }
    let replies = server.process_all().unwrap();
    assert_eq!(replies.len(), 4);
    // One cycle per shard that took traffic (one total when unsharded).
    let keys: Vec<Vec<u8>> = (0..4).map(|i| format!("k{i}").into_bytes()).collect();
    assert_eq!(
        server.batches_processed(),
        common::expected_batches(mode, &keys, 16)
    );
    for (id, wire) in replies {
        let c = clients.iter_mut().find(|c| c.lcm().id() == id).unwrap();
        let done = c.complete(&wire).unwrap();
        assert_eq!(done.result, KvResult::Stored);
    }
}

fn crash_between_rounds_is_transparent(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 2, 8, 5);
    clients[0].put(&mut server, b"persist", b"me").unwrap();
    for _ in 0..3 {
        server.crash();
        assert!(!server.boot().unwrap());
        let v = clients[1].get(&mut server, b"persist").unwrap();
        assert_eq!(v.unwrap(), b"me");
    }
}

fn lost_request_recovered_via_retry_over_links(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 1, 1, 6);
    let c = &mut clients[0];
    let duplex = Duplex::adversarial();

    // Client sends; the message is dropped in flight (server crash).
    duplex.client.send(
        c.invoke_wire(&KvOp::Put(b"a".to_vec(), b"1".to_vec()))
            .unwrap(),
    );
    duplex.to_server.drop_next();
    server.crash();
    server.boot().unwrap();

    // Timeout expires: the client retries through the (now honest)
    // link; the retry executes normally.
    duplex.to_server.set_auto_deliver(true);
    duplex.to_client.set_auto_deliver(true);
    duplex.client.send(c.lcm_mut().retry().unwrap());
    let wire = duplex.server.try_recv().unwrap();
    server.submit(wire);
    let replies = server.process_all().unwrap();
    duplex.server.send(replies[0].1.clone());
    let reply = duplex.client.try_recv().unwrap();
    let done = c.complete(&reply).unwrap();
    assert_eq!(done.completion.seq.0, 1);
}

fn lost_reply_recovered_via_cached_retry_over_links(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 1, 1, 7);
    let c = &mut clients[0];
    let duplex = Duplex::adversarial();
    duplex.to_server.set_auto_deliver(true);

    // Request processed; reply dropped in flight.
    duplex.client.send(
        c.invoke_wire(&KvOp::Put(b"a".to_vec(), b"1".to_vec()))
            .unwrap(),
    );
    server.submit(duplex.server.try_recv().unwrap());
    let replies = server.process_all().unwrap();
    duplex.server.send(replies[0].1.clone());
    duplex.to_client.drop_next(); // reply lost

    // Server even crashes afterwards.
    server.crash();
    server.boot().unwrap();

    // Retry: T recognizes the acknowledged context and resends the
    // cached reply without re-executing.
    duplex.client.send(c.lcm_mut().retry().unwrap());
    server.submit(duplex.server.try_recv().unwrap());
    let replies = server.process_all().unwrap();
    duplex.to_client.set_auto_deliver(true);
    duplex.server.send(replies[0].1.clone());
    let done = c.complete(&duplex.client.try_recv().unwrap()).unwrap();
    assert_eq!(done.completion.seq.0, 1);
    // The store was mutated exactly once.
    let v = c.get(&mut server, b"a").unwrap();
    assert_eq!(v.unwrap(), b"1");
}

fn single_client_group_is_immediately_stable(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 1, 1, 8);
    let c = &mut clients[0];
    c.put(&mut server, b"k", b"v").unwrap();
    let done = c.put(&mut server, b"k", b"v2").unwrap();
    // With n=1 the majority is the client itself; acknowledging op 1
    // makes it stable.
    assert_eq!(done.stable.0, 1);
}

fn large_values_roundtrip_through_the_full_stack(mode: Mode) {
    let (_w, mut server, _admin, mut clients) = setup(mode, 1, 1, 9);
    let c = &mut clients[0];
    let big = vec![0xabu8; 100_000];
    c.put(&mut server, b"blob", &big).unwrap();
    assert_eq!(c.get(&mut server, b"blob").unwrap().unwrap(), big);
}

fn admin_status_matches_client_progress(mode: Mode) {
    let (_w, mut server, mut admin, mut clients) = setup(mode, 2, 1, 10);
    for i in 0..5u32 {
        clients[(i % 2) as usize]
            .put(&mut server, b"k", &i.to_be_bytes())
            .unwrap();
    }
    let (t, _q, n) = admin.status(&mut server).unwrap();
    // Status fans out and reports shard 0; all five ops hit the shard
    // owning "k", which is shard 0 only in single-shard modes.
    if mode.shards() == 1 || mode.shard_of_key(b"k") == 0 {
        assert_eq!(t.0, 5);
    } else {
        assert_eq!(t.0, 0, "shard 0 saw no traffic");
    }
    assert_eq!(n, 2);
}

fn fresh_client_first_ops_reach_every_shard(mode: Mode) {
    // Positive-path coverage for the attested-identity check: a
    // freshly added client's FIRST operation on each shard must be
    // accepted (no history exists anywhere, the identity check alone
    // decides) — the misdelivery defence must not reject correctly
    // routed genesis traffic. Keys are chosen to cover every shard of
    // the deployment, and the deployment's shard count is what the
    // admin provisioned.
    let (_w, mut server, mut admin, _clients) = setup(mode, 1, 4, 9);
    assert_eq!(server.shard_count(), mode.shards());
    admin.add_client(&mut server, ClientId(42)).unwrap();
    let mut fresh = mk_client(mode, ClientId(42), admin.client_key());
    assert_eq!(fresh.n_shards(), mode.shards());

    let mut covered = vec![false; mode.shards() as usize];
    let mut i = 0u32;
    while covered.iter().any(|c| !c) {
        let key = format!("cover-{i}").into_bytes();
        let shard = mode.shard_of_key(&key) as usize;
        i += 1;
        if covered[shard] {
            continue;
        }
        covered[shard] = true;
        fresh.put(&mut server, &key, b"genesis-write").unwrap();
        assert_eq!(
            fresh.get(&mut server, &key).unwrap().unwrap(),
            b"genesis-write".to_vec()
        );
    }
    assert!(!fresh.lcm().is_halted());
}

fn scatter_gather_reads_cover_all_shards(mode: Mode) {
    // Cross-shard reads: multi-get fans GET legs out over the shards
    // (pipelined, one in flight per shard) and scan_all pins one scan
    // leg to EVERY shard and merges the ordered results. Each leg is
    // verified against its shard's own (tc, ts, hc) context — a wrong
    // or replayed leg would halt the client, so completing un-halted
    // IS the verification.
    let (_w, mut server, _admin, mut clients) = setup(mode, 2, 8, 11);
    let writer = &mut clients[0];

    // Write keys until every shard owns at least one, tracking the
    // expected contents.
    let mut expected: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut covered = vec![false; mode.shards() as usize];
    let mut i = 0u32;
    while covered.iter().any(|c| !c) || expected.len() < 6 {
        let key = format!("sg-{i:03}").into_bytes();
        let value = format!("v{i}").into_bytes();
        covered[mode.shard_of_key(&key) as usize] = true;
        writer.put(&mut server, &key, &value).unwrap();
        expected.push((key, value));
        i += 1;
    }
    expected.sort();

    // Scatter-gather GET from the *other* client (its first contact
    // with most shards), plus one key that exists nowhere.
    let reader = &mut clients[1];
    let mut keys: Vec<Vec<u8>> = expected.iter().map(|(k, _)| k.clone()).collect();
    keys.push(b"sg-missing".to_vec());
    let values = reader.multi_get(&mut server, &keys).unwrap();
    for (i, (_, v)) in expected.iter().enumerate() {
        assert_eq!(values[i].as_deref(), Some(v.as_slice()));
    }
    assert_eq!(values.last().unwrap(), &None);

    // Scatter-gather SCAN: the merged range equals the full expected
    // contents, in global key order, regardless of which shard owns
    // which slice.
    let all = reader.scan_all(&mut server, b"sg-", 100).unwrap();
    assert_eq!(all, expected);
    // A limited scan returns the global smallest `limit` keys — not
    // one shard's smallest.
    let first3 = reader.scan_all(&mut server, b"sg-", 3).unwrap();
    assert_eq!(first3, expected[..3].to_vec());
    // A mid-range start works across shard boundaries.
    let tail = reader.scan_all(&mut server, &expected[2].0, 100).unwrap();
    assert_eq!(tail, expected[2..].to_vec());
    assert!(!reader.lcm().is_halted());

    // The single-wire scan still sees only one shard's slice under
    // sharding — the gap scan_all exists to close.
    let one_leg = reader.scan(&mut server, b"sg-", 100).unwrap();
    if mode.shards() == 1 {
        assert_eq!(one_leg, expected);
    } else {
        assert!(one_leg.len() < expected.len());
    }
}

all_modes!(
    many_rounds_many_clients_stability_converges,
    reads_of_other_clients_writes_are_linearized,
    batched_and_unbatched_servers_agree,
    interleaved_batch_replies_route_correctly,
    crash_between_rounds_is_transparent,
    lost_request_recovered_via_retry_over_links,
    lost_reply_recovered_via_cached_retry_over_links,
    single_client_group_is_immediately_stable,
    large_values_roundtrip_through_the_full_stack,
    admin_status_matches_client_progress,
    fresh_client_first_ops_reach_every_shard,
    scatter_gather_reads_cover_all_shards,
);

#[test]
fn storage_io_failures_are_errors_not_violations() {
    // A flaky disk is a benign fault: the synchronous server surfaces
    // an error, nothing halts, and service resumes once the disk
    // recovers. (The pipelined server's asynchronous counterpart lives
    // in tests/batching.rs — there the error surfaces deferred, on the
    // *next* call.)
    use lcm::storage::{FailureMode, FlakyStorage};
    let world = TeeWorld::new_deterministic(77);
    let platform = world.platform_deterministic(1);
    let flaky = Arc::new(FlakyStorage::new(MemoryStorage::new()));
    let mut server = LcmServer::<KvStore>::new(&platform, flaky.clone(), 1);
    server.boot().unwrap();
    let mut admin = lcm::core::admin::AdminHandle::new_deterministic(
        &world,
        vec![ClientId(1)],
        Quorum::Majority,
        7,
    );
    admin.bootstrap(&mut server).unwrap();
    let mut client = KvsClient::new(ClientId(1), admin.client_key());

    client.put(&mut server, b"k", b"v1").unwrap();

    // Disk starts failing: operations error but are NOT violations.
    flaky.set_mode(FailureMode::FailStores);
    let err = client
        .run(&mut server, &KvOp::Put(b"k".to_vec(), b"v2".to_vec()))
        .unwrap_err();
    assert!(!err.is_violation(), "I/O failure misclassified: {err:?}");
    assert!(flaky.failures() >= 1);

    // Disk recovers; the pending op is retried and completes.
    flaky.set_mode(FailureMode::None);
    server.submit(client.lcm_mut().retry().unwrap());
    let replies = server.process_all().unwrap();
    let done = client.complete(&replies[0].1).unwrap();
    assert_eq!(done.result, KvResult::Stored);
}
