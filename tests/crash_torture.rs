//! Crash-torture sweep: crash the server at *every* point of a fixed
//! operation schedule — before processing, after processing but before
//! the reply is delivered — and verify that retry-based recovery is
//! exactly-once at each crash point.
//!
//! Every schedule runs in both server modes: the synchronous loop and
//! the asynchronous-write pipeline (where `crash` models a process
//! crash — writes accepted by the OS complete before recovery).

mod common;

use std::sync::Arc;

use common::{all_modes, mk_client, mk_server, Mode};
use lcm::core::admin::AdminHandle;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::ops::{KvOp, KvResult};
use lcm::kvs::store::KvStore;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

const SCHEDULE_LEN: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq)]
enum CrashKind {
    /// Crash after submit, before the batch is processed (request
    /// lost; retry re-executes).
    BeforeProcess,
    /// Crash after processing and persistence, before reply delivery
    /// (reply lost; retry returns the cached result).
    AfterProcess,
}

fn run_with_crash(mode: Mode, crash_at: usize, kind: CrashKind) {
    let world = TeeWorld::new_deterministic(4_000 + crash_at as u64);
    let mut server = mk_server::<KvStore>(mode, &world, 1, Arc::new(MemoryStorage::new()), 1);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 8);
    admin.bootstrap(&mut server).unwrap();
    let mut client = mk_client(mode, ClientId(1), admin.client_key());

    // Sequence numbers are per shard; predict them with the router.
    let mut per_shard_seq = vec![0u64; mode.shards() as usize];
    for i in 0..SCHEDULE_LEN {
        let key = format!("k{i}").into_bytes();
        let value = (i as u64).to_be_bytes().to_vec();
        let wire = client
            .invoke_wire(&KvOp::Put(key.clone(), value.clone()))
            .unwrap();

        if i == crash_at {
            match kind {
                CrashKind::BeforeProcess => {
                    server.submit(wire);
                    server.crash(); // queued request vanishes
                    server.boot().unwrap();
                }
                CrashKind::AfterProcess => {
                    server.submit(wire);
                    let _lost_reply = server.process_all().unwrap();
                    server.crash();
                    server.boot().unwrap();
                }
            }
            // Timeout ⇒ retry.
            server.submit(client.lcm_mut().retry().unwrap());
        } else {
            server.submit(wire);
        }

        let replies = server.process_all().unwrap();
        let done = client.complete(&replies[0].1).unwrap();
        assert_eq!(done.result, KvResult::Stored, "op {i}, crash at {crash_at}");
        let shard = mode.shard_of_key(&key) as usize;
        per_shard_seq[shard] += 1;
        assert_eq!(
            done.completion.seq.0, per_shard_seq[shard],
            "exactly-once sequencing on shard {shard}"
        );
    }

    // Full state check after the torture run.
    for i in 0..SCHEDULE_LEN {
        let got = client.get(&mut server, format!("k{i}").as_bytes()).unwrap();
        assert_eq!(got.unwrap(), (i as u64).to_be_bytes().to_vec());
    }
}

fn crash_before_processing_at_every_point(mode: Mode) {
    for crash_at in 0..SCHEDULE_LEN {
        run_with_crash(mode, crash_at, CrashKind::BeforeProcess);
    }
}

fn crash_after_processing_at_every_point(mode: Mode) {
    for crash_at in 0..SCHEDULE_LEN {
        run_with_crash(mode, crash_at, CrashKind::AfterProcess);
    }
}

fn double_crash_same_operation(mode: Mode) {
    // Crash before processing, recover, crash again after processing,
    // recover, retry again: still exactly-once.
    let world = TeeWorld::new_deterministic(4_100);
    let mut server = mk_server::<KvStore>(mode, &world, 1, Arc::new(MemoryStorage::new()), 1);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 9);
    admin.bootstrap(&mut server).unwrap();
    let mut client = mk_client(mode, ClientId(1), admin.client_key());

    let wire = client
        .invoke_wire(&KvOp::Put(b"k".to_vec(), b"v".to_vec()))
        .unwrap();
    server.submit(wire);
    server.crash();
    server.boot().unwrap();

    // First retry gets processed but the reply is lost in a second crash.
    server.submit(client.lcm_mut().retry().unwrap());
    let _lost = server.process_all().unwrap();
    server.crash();
    server.boot().unwrap();

    // Second retry returns the cached reply.
    server.submit(client.lcm_mut().retry().unwrap());
    let replies = server.process_all().unwrap();
    let done = client.complete(&replies[0].1).unwrap();
    assert_eq!(done.completion.seq.0, 1);
    assert_eq!(client.get(&mut server, b"k").unwrap().unwrap(), b"v");
    assert_eq!(
        client.lcm().last_seq().0,
        2,
        "one put + one get, nothing duplicated"
    );
}

/// Kills one group member at every batch boundary of the schedule —
/// cycling through the member slots — and reboots it immediately.
/// Acknowledged writes must survive every kill (replication holds them
/// at a quorum; unreplicated modes persisted them before the reply),
/// sequencing stays exactly-once, and no kill may surface as a false
/// violation to the client.
fn member_kill_churn(mode: Mode, power_failure: bool) {
    let world = TeeWorld::new_deterministic(4_200 + u64::from(power_failure));
    let mut server = mk_server::<KvStore>(mode, &world, 1, Arc::new(MemoryStorage::new()), 1);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 10);
    admin.bootstrap(&mut server).unwrap();
    let mut client = mk_client(mode, ClientId(1), admin.client_key());
    let replicas = mode.replicas();

    let mut per_shard_seq = vec![0u64; mode.shards() as usize];
    for i in 0..SCHEDULE_LEN {
        let key = format!("k{i}").into_bytes();
        let done = client
            .run(
                &mut server,
                &KvOp::Put(key.clone(), (i as u64).to_be_bytes().to_vec()),
            )
            .unwrap();
        assert_eq!(done.result, KvResult::Stored, "op {i}");
        let shard = mode.shard_of_key(&key);
        per_shard_seq[shard as usize] += 1;
        assert_eq!(
            done.completion.seq.0, per_shard_seq[shard as usize],
            "exactly-once sequencing across member kills (shard {shard})"
        );

        // Batch boundary: kill one member of the shard the op landed
        // on, then reboot it. Power failure against the sole member of
        // an unreplicated deployment is only survivable once its
        // writes are flushed; a replica group needs no such care — the
        // quorum holds every acknowledged write.
        let victim = if power_failure && replicas > 1 {
            1 + (i as u32 % (replicas - 1)) // churn the followers
        } else {
            i as u32 % replicas
        };
        if power_failure && replicas == 1 {
            server.flush_persists().unwrap();
        }
        server.kill_member(shard, victim, power_failure).unwrap();
        assert!(
            !server.reboot_member(shard, victim).unwrap(),
            "rebooted member resumes from sealed state, never fresh"
        );
    }

    for i in 0..SCHEDULE_LEN {
        let got = client.get(&mut server, format!("k{i}").as_bytes()).unwrap();
        assert_eq!(got.unwrap(), (i as u64).to_be_bytes().to_vec());
    }
    assert!(
        !client.lcm().is_halted(),
        "churn must not look like an attack"
    );
}

fn member_crash_stop_churn_at_batch_boundaries(mode: Mode) {
    member_kill_churn(mode, false);
}

fn member_power_failure_churn_at_batch_boundaries(mode: Mode) {
    member_kill_churn(mode, true);
}

/// Kills the group leader while a wire sits queued and unexecuted. The
/// wire dies with the leader (it was never acknowledged); the client's
/// §4.6.1 timeout-retry must then complete it exactly once — against a
/// promoted follower in replicated modes (no reboot of the dead
/// leader), against the rebooted server otherwise.
fn leader_kill_with_queued_work_recovers_via_retry(mode: Mode) {
    let world = TeeWorld::new_deterministic(4_300);
    let mut server = mk_server::<KvStore>(mode, &world, 1, Arc::new(MemoryStorage::new()), 1);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 11);
    admin.bootstrap(&mut server).unwrap();
    let mut client = mk_client(mode, ClientId(1), admin.client_key());

    client.put(&mut server, b"warm", b"up").unwrap();

    let key = b"contested".to_vec();
    let shard = mode.shard_of_key(&key);
    let wire = client
        .invoke_wire(&KvOp::Put(key.clone(), b"v".to_vec()))
        .unwrap();
    server.submit(wire);
    let leader = server.group_leader(shard);
    server.kill_member(shard, leader, false).unwrap();
    if mode.replicas() == 1 {
        // No follower to promote: the sole member must come back.
        server.reboot_member(shard, leader).unwrap();
    }

    // Timeout ⇒ retry; a promoted follower serves it from the
    // quorum-held state without any false violation.
    server.submit(client.lcm_mut().retry().unwrap());
    let replies = server.process_all().unwrap();
    let done = client.complete(&replies[0].1).unwrap();
    assert_eq!(done.result, KvResult::Stored);
    if mode.replicas() > 1 {
        assert_ne!(
            server.group_leader(shard),
            leader,
            "a follower took over the dead leader's group"
        );
    }
    assert_eq!(
        client.get(&mut server, &key).unwrap().unwrap(),
        b"v".to_vec()
    );
    assert!(!client.lcm().is_halted());
}

/// Live slice migration interrupted by a target-shard crash: the
/// handshake parks as a pending move (the origin already exported, so
/// no new move may start), the rest of the deployment keeps serving,
/// resuming after the reboot finishes the move exactly once — and the
/// rollback alarm still fires for the slice on its NEW home, proving
/// the migrated V-map entries and hash chain came across intact.
#[test]
fn crash_mid_slice_migration_resumes_and_rollback_protection_survives() {
    use lcm::core::routing::slice_of;
    use lcm::core::server::BatchServer;
    use lcm::core::shard::{build_sharded, nth_key_routing_to, route_hash};
    use lcm::storage::{AdversaryMode, RollbackStorage};

    const SHARDS: u32 = 4;
    let world = TeeWorld::new_deterministic(4242);
    let storage = Arc::new(RollbackStorage::new());
    let mut server = build_sharded::<KvStore>(&world, 1, storage.clone(), 1, SHARDS, false);
    assert!(server.boot().unwrap());
    let ids = vec![ClientId(1), ClientId(2)];
    let mut admin = AdminHandle::new_deterministic(&world, ids, Quorum::Majority, 11);
    admin.bootstrap(&mut server).unwrap();
    let mut victim =
        lcm::kvs::client::KvsClient::new_sharded(ClientId(1), admin.client_key(), SHARDS);
    let mut bystander =
        lcm::kvs::client::KvsClient::new_sharded(ClientId(2), admin.client_key(), SHARDS);

    // A key on the slice that will move (origin shard 0) and one on a
    // shard outside the handshake.
    let moving = nth_key_routing_to(0, SHARDS, "mv", 0);
    let parked = nth_key_routing_to(1, SHARDS, "by", 0);
    victim.put(&mut server, &moving, b"v1").unwrap();
    bystander.put(&mut server, &parked, b"w1").unwrap();

    let slice = slice_of(route_hash(&moving));
    let to = 2u32;
    // The target dies before the handshake: the export succeeds, the
    // sealed ticket cannot be delivered.
    server.with_shard(to, |s| s.crash());
    let err = server.migrate_slice(slice, to).unwrap_err();
    assert!(!err.is_violation(), "a dead target parks the move: {err:?}");
    assert_eq!(server.pending_slice_move(), Some((slice, 0, to)));
    // A second move cannot start while the handshake is parked.
    assert!(server
        .migrate_slice(slice_of(route_hash(&parked)), 3)
        .is_err());

    // Shards outside the handshake keep serving.
    assert_eq!(
        bystander.get(&mut server, &parked).unwrap().unwrap(),
        b"w1".to_vec()
    );

    // Reboot the target (recovery, not re-provisioning) and finish.
    assert!(!server.with_shard(to, |s| s.boot()).unwrap());
    server.resume_slice_migration().unwrap();
    assert_eq!(server.pending_slice_move(), None);
    assert_eq!(server.routing_epoch(), 1);

    // The stale client chases the redirect onto the new owner.
    assert_eq!(
        victim.get(&mut server, &moving).unwrap().unwrap(),
        b"v1".to_vec()
    );
    victim.put(&mut server, &moving, b"v2").unwrap();

    // Rollback protection followed the slice: the new owner
    // acknowledges a write whose persist is silently dropped, crashes,
    // recovers from the stale medium — the victim must detect it.
    server.flush_persists().unwrap();
    storage.set_mode(AdversaryMode::DropWrites);
    victim.put(&mut server, &moving, b"v3").unwrap();
    server.flush_persists().unwrap();
    storage.set_mode(AdversaryMode::Honest);
    server
        .with_shard(to, |s| {
            s.crash();
            s.boot()
        })
        .unwrap();
    let err = victim
        .run(&mut server, &KvOp::Get(moving.clone()))
        .unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
}

all_modes!(
    crash_before_processing_at_every_point,
    crash_after_processing_at_every_point,
    double_crash_same_operation,
    member_crash_stop_churn_at_batch_boundaries,
    member_power_failure_churn_at_batch_boundaries,
    leader_kill_with_queued_work_recovers_via_retry,
);
