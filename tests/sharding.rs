//! Sharding-specific integration tests: router invariants
//! (property-based), routing stability across reboot and migration,
//! and fault isolation when a single shard power-fails.

mod common;

use std::sync::Arc;

use common::{mk_client, mk_server, Mode};
use lcm::core::admin::AdminHandle;
use lcm::core::pipeline::PipelinedServer;
use lcm::core::routing::{slice_of, SliceTable, SLICE_COUNT};
use lcm::core::server::{BatchServer, LcmServer};
use lcm::core::shard::{route_hash, shard_index, ShardedServer};
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::KvOp;
use lcm::kvs::store::KvStore;
use lcm::storage::{MemoryStorage, NamespacedStorage, StableStorage};
use lcm::tee::world::TeeWorld;
use proptest::prelude::*;

const SHARDED: Mode = Mode::Sharded {
    shards: 4,
    pipelined: false,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The client-side router is plain 32-bit FNV-1a: an independent
    /// reference implementation (offset basis 2166136261, prime
    /// 16777619, written out numerically) agrees byte for byte. This
    /// is the same public function the enclave recomputes over the
    /// decrypted operation, so client router and in-enclave check can
    /// only agree or both be wrong — never drift apart.
    #[test]
    fn route_hash_matches_reference_fnv1a(
        key in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut reference: u32 = 2_166_136_261;
        for &b in &key {
            reference ^= u32::from(b);
            reference = reference.wrapping_mul(16_777_619);
        }
        prop_assert_eq!(reference, route_hash(&key));
    }

    /// Every key maps to exactly one shard, the mapping is total for
    /// any shard count, and recomputing it gives the same answer
    /// (determinism is what makes reboot/migration routing stable).
    #[test]
    fn every_key_maps_to_exactly_one_shard(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        shards in 1u32..=8,
    ) {
        let first = shard_index(route_hash(&key), shards);
        prop_assert!(first < shards);
        // Stable under recomputation and independent of any ambient
        // state.
        prop_assert_eq!(first, shard_index(route_hash(&key), shards));
        // Exactly one shard: the index is a function, so any other
        // shard index differs.
        for other in 0..shards {
            if other != first {
                prop_assert_ne!(first, other);
            }
        }
    }

    /// Routing is stable across a full-deployment reboot: every key
    /// written before the crash reads back after recovery. (A routing
    /// change would send the read — and the client's per-shard context
    /// — to a different shard and trip a violation instead.)
    #[test]
    fn routing_stable_across_reboot(
        keys in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..12), 1..8),
        seed in 0u64..500,
    ) {
        let world = TeeWorld::new_deterministic(seed);
        let mut server =
            mk_server::<KvStore>(SHARDED, &world, 1, Arc::new(MemoryStorage::new()), 4);
        prop_assert!(server.boot().unwrap());
        let mut admin = AdminHandle::new_deterministic(
            &world, vec![ClientId(1)], Quorum::Majority, seed);
        admin.bootstrap(&mut server).unwrap();
        let mut client = mk_client(SHARDED, ClientId(1), admin.client_key());

        for (i, key) in keys.iter().enumerate() {
            client.put(&mut server, key, &[i as u8]).unwrap();
        }
        server.crash();
        prop_assert!(!server.boot().unwrap(), "recovered, not re-provisioned");
        for (i, key) in keys.iter().enumerate() {
            // Later writes to a duplicate key win; recompute the
            // expected value.
            let expected = keys.iter().rposition(|k| k == key).unwrap_or(i) as u8;
            let got = client.get(&mut server, key).unwrap();
            prop_assert_eq!(got.unwrap(), vec![expected]);
        }
    }

    /// The epoch-versioned slice table stays a total function of the
    /// route under arbitrary move sequences: every route maps to
    /// exactly one in-range shard, a moved slice maps to its target,
    /// the epoch counts exactly the applied moves, and the only
    /// refused move is the no-op (target already owns the slice).
    #[test]
    fn slice_moves_preserve_total_coverage(
        shards in 2u32..=8,
        moves in proptest::collection::vec((0u32..SLICE_COUNT, 0u32..8), 0..16),
    ) {
        let mut table = SliceTable::uniform(shards);
        let mut applied = 0u64;
        for (slice, to) in moves {
            let to = to % shards;
            match table.moved(slice, to) {
                Some(next) => {
                    prop_assert_eq!(next.epoch(), table.epoch() + 1);
                    prop_assert_eq!(next.owner(slice), to);
                    table = next;
                    applied += 1;
                }
                None => prop_assert_eq!(table.owner(slice), to),
            }
        }
        prop_assert_eq!(table.epoch(), applied);
        for route in 0..1024u32 {
            let shard = table.shard_of(route);
            prop_assert!(shard < shards);
            // Deterministic and consistent with the slice owner.
            prop_assert_eq!(shard, table.owner(slice_of(route)));
            prop_assert_eq!(shard, table.shard_of(route));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The in-enclave route recomputation agrees with the client-side
    /// router on the REAL stack: for arbitrary keys, every correctly
    /// routed operation is accepted (the enclave recomputed the same
    /// route from the decrypted op) and lands on exactly the shard the
    /// client predicted (per-shard op counters match the prediction).
    /// A disagreement would surface as a WrongShard violation or a
    /// count mismatch.
    #[test]
    fn in_enclave_route_recomputation_agrees_with_client_router(
        keys in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..24), 1..10),
        seed in 0u64..200,
    ) {
        const SHARDS: u32 = 4;
        let world = TeeWorld::new_deterministic(seed ^ 0x5a5a);
        let storage = Arc::new(MemoryStorage::new());
        let mut server = lcm::core::shard::build_sharded::<KvStore>(
            &world, 1, storage, 4, SHARDS, false);
        prop_assert!(server.boot().unwrap());
        let mut admin = AdminHandle::new_deterministic(
            &world, vec![ClientId(1)], Quorum::Majority, seed);
        admin.bootstrap(&mut server).unwrap();
        let mut client = KvsClient::new_sharded(ClientId(1), admin.client_key(), SHARDS);

        let mut predicted = [0u64; SHARDS as usize];
        for (i, key) in keys.iter().enumerate() {
            predicted[shard_index(route_hash(key), SHARDS) as usize] += 1;
            client.put(&mut server, key, &[i as u8]).unwrap();
        }
        let stats = server.shard_stats();
        for (shard, row) in stats.iter().enumerate() {
            // The shard executed exactly the slice the client routed.
            prop_assert!(row.ops == predicted[shard],
                "shard {shard}: executed {} vs routed {}", row.ops, predicted[shard]);
        }
    }

    /// Redirect convergence on the real stack: after an arbitrary
    /// sequence of live slice migrations, a client still holding an
    /// older table reaches every key by chasing the typed redirects —
    /// every operation ends `Done` with the pre-migration value, and
    /// the host's routing epoch counts exactly the applied moves.
    #[test]
    fn redirects_converge_after_arbitrary_migrations(
        moves in proptest::collection::vec((0u32..SLICE_COUNT, 0u32..4), 1..6),
        seed in 0u64..100,
    ) {
        const SHARDS: u32 = 4;
        let world = TeeWorld::new_deterministic(seed ^ 0xa11c);
        let mut server = lcm::core::shard::build_sharded::<KvStore>(
            &world, 1, Arc::new(MemoryStorage::new()), 4, SHARDS, false);
        prop_assert!(server.boot().unwrap());
        let mut admin = AdminHandle::new_deterministic(
            &world, vec![ClientId(1)], Quorum::Majority, seed);
        admin.bootstrap(&mut server).unwrap();
        let mut client = KvsClient::new_sharded(ClientId(1), admin.client_key(), SHARDS);

        let keys: Vec<Vec<u8>> = (0..SHARDS)
            .map(|s| lcm::core::shard::nth_key_routing_to(s, SHARDS, "rc", 0))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            client.put(&mut server, key, &[i as u8]).unwrap();
        }

        let mut applied = 0u64;
        for (slice, to) in moves {
            // The only refused move is the no-op; `migrate_slice`
            // rejects it before touching any enclave.
            match server.migrate_slice(slice, to) {
                Ok(()) => applied += 1,
                Err(_) => prop_assert_eq!(server.current_table().owner(slice), to),
            }
        }
        prop_assert_eq!(server.routing_epoch(), applied);

        // The client's table is up to `applied` epochs behind; every
        // read converges through redirects.
        for (i, key) in keys.iter().enumerate() {
            let got = client.get(&mut server, key).unwrap();
            prop_assert_eq!(got.unwrap(), vec![i as u8]);
        }
    }
}

/// Routing is stable across migration: a sharded deployment exports
/// per-shard tickets, a fresh deployment (different platforms, fresh
/// medium) imports them, and every key reads back through the same
/// router.
#[test]
fn routing_stable_across_migration() {
    let world = TeeWorld::new_deterministic(77);
    let mut origin = mk_server::<KvStore>(SHARDED, &world, 1, Arc::new(MemoryStorage::new()), 4);
    assert!(origin.boot().unwrap());
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 7);
    admin.bootstrap(&mut origin).unwrap();
    let mut client = mk_client(SHARDED, ClientId(1), admin.client_key());

    let keys: Vec<Vec<u8>> = (0..12).map(|i| format!("mk{i}").into_bytes()).collect();
    for (i, key) in keys.iter().enumerate() {
        client.put(&mut origin, key, &[i as u8]).unwrap();
    }

    let mut target = mk_server::<KvStore>(SHARDED, &world, 200, Arc::new(MemoryStorage::new()), 4);
    assert!(target.boot().unwrap());
    // Migration re-verifies the whole target deployment: one
    // identity-bound quote per imported shard.
    let manifest = admin.migrate(&mut origin, &mut target).unwrap();
    assert_eq!(manifest.shards, 4);
    assert_eq!(manifest.quotes.len(), 4);

    for (i, key) in keys.iter().enumerate() {
        let got = client.get(&mut target, key).unwrap();
        assert_eq!(got.unwrap(), vec![i as u8], "key {i} after migration");
    }
    // The origin refuses service after migrating away.
    let mut late = KvsClient::new_sharded(ClientId(1), admin.client_key(), 4);
    origin.submit(late.invoke_wire(&KvOp::Get(keys[0].clone())).unwrap());
    assert!(origin.process_all().is_err(), "origin must refuse service");
}

/// Storage whose writes block until a gate opens — pins persist jobs
/// inside shard writer pipelines at a deterministic point.
struct GatedStorage {
    inner: MemoryStorage,
    gate: std::sync::Mutex<bool>,
    opened: std::sync::Condvar,
}

impl GatedStorage {
    fn new() -> Self {
        GatedStorage {
            inner: MemoryStorage::new(),
            gate: std::sync::Mutex::new(true),
            opened: std::sync::Condvar::new(),
        }
    }
    fn open(&self) {
        *self.gate.lock().unwrap() = true;
        self.opened.notify_all();
    }
    fn close(&self) {
        *self.gate.lock().unwrap() = false;
    }
}

impl StableStorage for GatedStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> lcm::storage::Result<()> {
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
        drop(open);
        self.inner.store(slot, blob)
    }
    fn load(&self, slot: &str) -> lcm::storage::Result<Option<Vec<u8>>> {
        self.inner.load(slot)
    }
}

/// The satellite crash-torture scenario: power-fail ONE shard of a
/// pipelined sharded deployment. The other shards' state — and their
/// clients — are unaffected, and exactly the client with acknowledged
/// state on the failed shard detects the rollback. The deployment
/// keeps serving the healthy shards even after the victim shard halts.
#[test]
fn power_failure_of_one_shard_is_isolated_and_detected() {
    const SHARDS: u32 = 4;
    let world = TeeWorld::new_deterministic(88);
    let medium = Arc::new(GatedStorage::new());
    let lanes: Vec<PipelinedServer<KvStore>> = (0..SHARDS)
        .map(|i| {
            let platform = world.platform_deterministic(1 + u64::from(i));
            let region = Arc::new(NamespacedStorage::new(
                medium.clone(),
                NamespacedStorage::shard_prefix(i),
            ));
            PipelinedServer::with_queue_capacity(LcmServer::<KvStore>::new(&platform, region, 1), 8)
        })
        .collect();
    let mut server = ShardedServer::new(lanes);
    assert!(server.boot().unwrap());
    let ids = vec![ClientId(1), ClientId(2)];
    let mut admin = AdminHandle::new_deterministic(&world, ids, Quorum::Majority, 9);
    admin.bootstrap(&mut server).unwrap();
    let mut victim = KvsClient::new_sharded(ClientId(1), admin.client_key(), SHARDS);
    let mut bystander = KvsClient::new_sharded(ClientId(2), admin.client_key(), SHARDS);

    // Two keys on different shards.
    let ka = b"fail-key".to_vec();
    let shard_a = shard_index(route_hash(&ka), SHARDS);
    let kb = (0..64u32)
        .map(|i| format!("ok{i}").into_bytes())
        .find(|k| shard_index(route_hash(k), SHARDS) != shard_a)
        .expect("some key on another shard");
    let shard_b = shard_index(route_hash(&kb), SHARDS);

    // Durable baseline on both shards.
    victim.put(&mut server, &ka, b"v1").unwrap();
    bystander.put(&mut server, &kb, b"w1").unwrap();
    server.flush_persists().unwrap();

    // Gate closes: shard A acknowledges two more ops whose persists
    // stall (one in flight inside the store, one queued).
    medium.close();
    victim.put(&mut server, &ka, b"v2").unwrap();
    victim.put(&mut server, &ka, b"v3").unwrap();
    while server.with_shard(shard_a, |s| s.pending_persists()) != 1 {
        std::thread::yield_now();
    }

    // Power failure of shard A alone: the queued snapshot is lost; the
    // in-flight write completes once the "controller" (gate) lets it.
    let dropped = server.with_shard(shard_a, |s| s.crash_power_failure());
    assert_eq!(dropped, 1);
    medium.open();
    server.with_shard(shard_a, |s| s.boot()).unwrap();

    // The bystander's shard never noticed: reads and writes continue.
    assert_eq!(
        bystander.get(&mut server, &kb).unwrap().unwrap(),
        b"w1".to_vec()
    );
    bystander.put(&mut server, &kb, b"w2").unwrap();

    // The victim's next op on shard A trips rollback detection (v3 was
    // acknowledged but its persist died with the power).
    let err = victim.run(&mut server, &KvOp::Get(ka.clone())).unwrap_err();
    assert!(err.is_violation(), "got {err:?}");

    // Shard A is halted, but the healthy shards keep serving.
    assert_eq!(
        bystander.get(&mut server, &kb).unwrap().unwrap(),
        b"w2".to_vec()
    );
    assert!(server.with_shard(shard_b, |s| s.is_running()));
    // Only the victim is left hanging (its GET never completed); the
    // bystander's protocol state is untouched.
    assert!(victim.lcm().has_pending());
    assert!(!bystander.lcm().is_halted());
}
