//! Integration tests for the §4.6 extensions under longer lifecycles:
//! chained migrations, migration + attack interplay, membership churn.

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::store::KvStore;
use lcm::storage::{AdversaryMode, MemoryStorage, RollbackStorage, Version};
use lcm::tee::world::TeeWorld;

fn fresh_server(world: &TeeWorld, platform_id: u64) -> LcmServer<KvStore> {
    let platform = world.platform_deterministic(platform_id);
    let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), 8);
    server.boot().unwrap();
    server
}

#[test]
fn chained_migration_across_three_platforms() {
    let world = TeeWorld::new_deterministic(40);
    let mut a = fresh_server(&world, 1);
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 1);
    admin.bootstrap(&mut a).unwrap();
    let mut client = KvsClient::new(ClientId(1), admin.client_key());

    client.put(&mut a, b"k", b"on-a").unwrap();

    let mut b = fresh_server(&world, 2);
    admin.migrate(&mut a, &mut b).unwrap();
    client.put(&mut b, b"k", b"on-b").unwrap();

    let mut c = fresh_server(&world, 3);
    admin.migrate(&mut b, &mut c).unwrap();
    let done = client.put(&mut c, b"k", b"on-c").unwrap();

    // The global sequence spans all three machines.
    assert_eq!(done.seq.0, 3);
    assert_eq!(client.get(&mut c, b"k").unwrap().unwrap(), b"on-c");
    // Earlier hosts refuse service.
    assert!(b.process_all().is_ok()); // empty queue is fine
    client.lcm_mut().set_recording(false);
}

#[test]
fn rollback_after_migration_still_detected() {
    let world = TeeWorld::new_deterministic(41);
    let mut origin = fresh_server(&world, 1);
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 2);
    admin.bootstrap(&mut origin).unwrap();
    let mut client = KvsClient::new(ClientId(1), admin.client_key());
    client.put(&mut origin, b"k", b"v1").unwrap();

    // Migrate to a server with adversarial storage.
    let platform = world.platform_deterministic(2);
    let storage = Arc::new(RollbackStorage::new());
    let mut target = LcmServer::<KvStore>::new(&platform, storage.clone(), 8);
    target.boot().unwrap();
    admin.migrate(&mut origin, &mut target).unwrap();

    client.put(&mut target, b"k", b"v2").unwrap();
    client.put(&mut target, b"k", b"v3").unwrap();

    // The new host rolls back to the post-migration state.
    storage.set_mode(AdversaryMode::ServeVersion(Version(0)));
    target.crash();
    target.boot().unwrap();

    let err = client.get(&mut target, b"k").unwrap_err();
    assert!(err.is_violation());
}

#[test]
fn migration_ticket_replay_on_second_target_rejected() {
    // The origin exports once; the host tries to "migrate" to two
    // targets (a fork attempt via migration). The second import works
    // cryptographically (same ticket) — but the origin only produced
    // ONE ticket and stopped, so the host must replay it. Both targets
    // would then serve the same state: a fork, detectable as usual.
    let world = TeeWorld::new_deterministic(42);
    let mut origin = fresh_server(&world, 1);
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 3);
    admin.bootstrap(&mut origin).unwrap();
    let mut client = KvsClient::new(ClientId(1), admin.client_key());
    client.put(&mut origin, b"k", b"v1").unwrap();

    let ticket = origin.export_migration().unwrap();

    let mut t1 = fresh_server(&world, 2);
    let mut t2 = fresh_server(&world, 3);
    t1.import_migration(ticket.clone()).unwrap();
    t2.import_migration(ticket).unwrap();

    // Client proceeds on t1; its context diverges from t2's copy.
    client.put(&mut t1, b"k", b"v2").unwrap();
    // Crossing to the replayed instance is detected immediately.
    let err = client.get(&mut t2, b"k").unwrap_err();
    assert!(err.is_violation());
}

#[test]
fn membership_churn_with_ongoing_traffic() {
    let world = TeeWorld::new_deterministic(43);
    let mut server = fresh_server(&world, 1);
    let ids = vec![ClientId(1), ClientId(2)];
    let mut admin = AdminHandle::new_deterministic(&world, ids, Quorum::Majority, 4);
    admin.bootstrap(&mut server).unwrap();
    let mut c1 = KvsClient::new(ClientId(1), admin.client_key());
    let mut c2 = KvsClient::new(ClientId(2), admin.client_key());

    c1.put(&mut server, b"k", b"1").unwrap();
    c2.put(&mut server, b"k", b"2").unwrap();

    // Add three clients one by one with traffic in between.
    for new_id in 3..=5u32 {
        admin.add_client(&mut server, ClientId(new_id)).unwrap();
        let mut newcomer = KvsClient::new(ClientId(new_id), admin.client_key());
        newcomer
            .put(&mut server, b"k", &new_id.to_be_bytes())
            .unwrap();
        c1.put(&mut server, b"k", b"still-here").unwrap();
    }
    let (_, _, n) = admin.status(&mut server).unwrap();
    assert_eq!(n, 5);

    // Remove two; each removal rotates kC and remaining clients follow.
    for gone in [ClientId(4), ClientId(5)] {
        let new_kc = admin.remove_client(&mut server, gone).unwrap();
        c1.lcm_mut().rotate_key(&new_kc);
        c2.lcm_mut().rotate_key(&new_kc);
        c1.put(&mut server, b"k", b"rotated").unwrap();
        c2.get(&mut server, b"k").unwrap();
    }
    let (_, _, n) = admin.status(&mut server).unwrap();
    assert_eq!(n, 3);

    // Survives a crash after all the churn.
    server.crash();
    server.boot().unwrap();
    assert_eq!(c1.get(&mut server, b"k").unwrap().unwrap(), b"rotated");
}

#[test]
fn stability_floor_survives_membership_removal() {
    // Removing a member shrinks V; the reported watermark must not
    // regress (the context's monotone floor).
    let world = TeeWorld::new_deterministic(44);
    let mut server = fresh_server(&world, 1);
    let ids = vec![ClientId(1), ClientId(2), ClientId(3)];
    let mut admin = AdminHandle::new_deterministic(&world, ids, Quorum::Majority, 5);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<KvsClient> = (1..=3u32)
        .map(|i| KvsClient::new(ClientId(i), admin.client_key()))
        .collect();

    // Two rounds: watermark advances.
    for _ in 0..2 {
        for c in clients.iter_mut() {
            c.put(&mut server, b"k", b"v").unwrap();
        }
    }
    let watermark_before = clients[0].put(&mut server, b"k", b"v").unwrap().stable;
    assert!(watermark_before.0 >= 1);

    // Remove the client with the highest executed seqno.
    let new_kc = admin.remove_client(&mut server, ClientId(3)).unwrap();
    clients[0].lcm_mut().rotate_key(&new_kc);
    clients[1].lcm_mut().rotate_key(&new_kc);

    let after = clients[0].put(&mut server, b"k", b"v").unwrap();
    assert!(
        after.stable >= watermark_before,
        "watermark regressed: {} -> {}",
        watermark_before,
        after.stable
    );
}

#[test]
fn migration_preserves_stability_floor() {
    let world = TeeWorld::new_deterministic(45);
    let mut origin = fresh_server(&world, 1);
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 6);
    admin.bootstrap(&mut origin).unwrap();
    let mut client = KvsClient::new(ClientId(1), admin.client_key());
    client.put(&mut origin, b"k", b"1").unwrap();
    let stable_on_origin = client.put(&mut origin, b"k", b"2").unwrap().stable;
    assert!(stable_on_origin.0 >= 1);

    let mut target = fresh_server(&world, 2);
    admin.migrate(&mut origin, &mut target).unwrap();
    let after = client.put(&mut target, b"k", b"3").unwrap();
    assert!(after.stable >= stable_on_origin);
}
