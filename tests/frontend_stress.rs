//! Multi-threaded ingress stress for the concurrent transport
//! front-end: ≥8 client threads submit into a 4-shard deployment
//! through `FrontendPort`s while driver threads pump the lanes
//! continuously.
//!
//! Two properties under load:
//!
//! 1. **Per-client submission-order reply delivery** — each client
//!    pipelines a burst across distinct shards and must receive the
//!    replies in exactly the order it submitted (checked via the
//!    client's completion records).
//! 2. **Zero lost tickets across crash/reboot of one shard** — while
//!    the fleet hammers the deployment, one shard is crashed and
//!    rebooted repeatedly; affected tickets are written off (never
//!    wedging other clients' replies), affected clients retry after a
//!    timeout, and every operation completes exactly once (the final
//!    counter values prove no op was lost or doubled). No client may
//!    ever halt: an honest crash must never look like an attack.
//!
//! Both lanes run: sync (`LcmServer`) and pipelined
//! (`PipelinedServer`). The CI `frontend-stress` job repeats this
//! suite with `RUST_TEST_THREADS` pinned high and distinct
//! `LCM_STRESS_SEED`s to shake out ordering races; the seed is logged
//! so a failing schedule can be replayed.

use std::sync::Arc;
use std::time::Duration;

use lcm::core::admin::AdminHandle;
use lcm::core::client::LcmClient;
use lcm::core::functionality::Counter;
use lcm::core::server::BatchServer;
use lcm::core::shard::{self, build_sharded, route_hash, shard_index, ShardedServer};
use lcm::core::stability::Quorum;
use lcm::core::transport::{DriveMode, Frontend, FrontendPort};
use lcm::core::types::ClientId;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

const SHARDS: u32 = 4;
const CLIENT_THREADS: u32 = 8;
const DRIVER_THREADS: usize = 4;
/// Retry timeout: long enough that an idle-system reply (microseconds)
/// never races it, short enough to converge through a reboot quickly.
const RETRY_AFTER: Duration = Duration::from_millis(500);

fn stress_seed() -> u64 {
    let seed = std::env::var("LCM_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    eprintln!(
        "frontend_stress config: seed={seed} shards={SHARDS} \
         client_threads={CLIENT_THREADS} driver_threads={DRIVER_THREADS}"
    );
    seed
}

type Fleet = (
    Frontend<ShardedServer<Box<dyn BatchServer>>>,
    Vec<LcmClient>,
);

fn build_fleet(pipelined: bool, seed: u64) -> Fleet {
    let world = TeeWorld::new_deterministic(31_000 + seed);
    let server = build_sharded::<Counter>(
        &world,
        1,
        Arc::new(MemoryStorage::new()),
        16,
        SHARDS,
        pipelined,
    );
    let mut fe = Frontend::new(server, DRIVER_THREADS, DriveMode::Continuous).unwrap();
    assert!(fe.boot().unwrap());
    let ids: Vec<ClientId> = (1..=CLIENT_THREADS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut fe).unwrap();
    let clients = ids
        .iter()
        .map(|&id| LcmClient::new_sharded(id, admin.client_key(), SHARDS))
        .collect();
    (fe, clients)
}

/// One counter name per shard, private to `client` (so every client
/// exercises every shard without sharing state with the fleet).
fn names_covering_all_shards(client: ClientId) -> Vec<Vec<u8>> {
    (0..SHARDS)
        .map(|shard| shard::nth_key_routing_to(shard, SHARDS, &format!("c{}-", client.0), 0))
        .collect()
}

/// Property 1: per-client submission-order delivery under concurrent
/// multi-producer load.
fn ordered_bursts(pipelined: bool) {
    const ROUNDS: u64 = 8;
    let seed = stress_seed();
    let (fe, clients) = build_fleet(pipelined, seed);
    let handles: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let port: FrontendPort = fe.connect(client.id());
            std::thread::spawn(move || {
                client.set_recording(true);
                let names = names_covering_all_shards(client.id());
                let mut submitted: Vec<Vec<u8>> = Vec::new();
                for round in 0..ROUNDS {
                    // Burst: one op per shard, pipelined, all in
                    // flight together.
                    for name in &names {
                        let op = Counter::inc_op(name, round + 1);
                        port.send(client.invoke_for::<Counter>(&op).unwrap());
                        submitted.push(op);
                    }
                    for _ in 0..names.len() {
                        let reply = port
                            .recv_timeout(Duration::from_secs(30))
                            .expect("reply within 30s on an idle system");
                        client.handle_reply(&reply).unwrap();
                    }
                }
                assert!(!client.is_halted());
                assert!(!client.has_pending());
                // The recorded completion order IS the submission
                // order — the front-end's demux never reordered this
                // client's replies, across rounds or within a burst.
                let completed: Vec<Vec<u8>> =
                    client.records().iter().map(|r| r.op.clone()).collect();
                assert_eq!(completed, submitted, "client {:?}", client.id());
                submitted.len() as u64
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, u64::from(CLIENT_THREADS * SHARDS) * ROUNDS);
    assert_eq!(fe.ops_processed(), total);
    assert_eq!(fe.in_flight(), 0, "every ticket settled");
    let stats = fe.stats();
    assert_eq!(stats.submitted(), total);
    assert_eq!(stats.delivered(), total);
    assert_eq!(stats.dropped_replies(), 0);
}

#[test]
fn ordered_bursts_sync_lanes() {
    ordered_bursts(false);
}

#[test]
fn ordered_bursts_pipelined_lanes() {
    ordered_bursts(true);
}

/// Property 2: zero lost tickets across crash/reboot of one shard.
fn crash_reboot_one_shard(pipelined: bool) {
    const INCS_PER_NAME: u64 = 6;
    let seed = stress_seed();
    let (mut fe, clients) = build_fleet(pipelined, seed);
    let victim = shard_index(route_hash(b"victim-pick"), SHARDS);
    let handles: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let port: FrontendPort = fe.connect(client.id());
            std::thread::spawn(move || {
                let names = names_covering_all_shards(client.id());
                for round in 1..=INCS_PER_NAME {
                    for name in &names {
                        // Sequential ops with timeout-retry: a ticket
                        // written off by the crash produces no reply,
                        // so the retry path is what converges.
                        let op = Counter::inc_op(name, 1);
                        port.send(client.invoke_for::<Counter>(&op).unwrap());
                        let mut attempts = 0u32;
                        let value = loop {
                            match port.recv_timeout(RETRY_AFTER) {
                                Some(reply) => {
                                    let done = client.handle_reply(&reply).unwrap();
                                    break Counter::decode_result(&done.result).unwrap();
                                }
                                None => {
                                    attempts += 1;
                                    assert!(
                                        attempts < 120,
                                        "op starved: client {:?} name {:?} round {round}",
                                        client.id(),
                                        String::from_utf8_lossy(name)
                                    );
                                    port.send(client.retry().unwrap());
                                }
                            }
                        };
                        // Exactly-once: the i-th completed increment
                        // reads i, through any number of retries,
                        // write-offs, and reboots.
                        assert_eq!(
                            value,
                            round,
                            "lost or doubled op: client {:?} name {:?}",
                            client.id(),
                            String::from_utf8_lossy(name)
                        );
                        // Drop any stale duplicate (a cached-reply
                        // resend that raced the timeout) before the
                        // next op is submitted.
                        while port.try_recv().is_some() {}
                    }
                }
                assert!(!client.is_halted(), "honest crashes must not halt clients");
                u64::from(SHARDS) * INCS_PER_NAME
            })
        })
        .collect();

    // While the fleet hammers the deployment, crash and reboot one
    // shard repeatedly. `with_shard` writes off the victim's in-flight
    // tickets so no other shard's replies are ever dammed up.
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(120));
        fe.server_mut().with_shard(victim, |s| s.crash());
        std::thread::sleep(Duration::from_millis(80));
        fe.server_mut()
            .with_shard(victim, |s| s.boot())
            .expect("victim shard reboots from its sealed state");
    }

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, u64::from(CLIENT_THREADS * SHARDS) * INCS_PER_NAME);
    // Wires fed to the stopped enclave surface as non-violation errors
    // (enclave unavailable) — never as protocol violations.
    if let Err(e) = fe.process_all() {
        assert!(!e.is_violation(), "crash noise misclassified: {e:?}");
    }
    assert_eq!(fe.stats().dropped_replies(), 0);
    assert_eq!(fe.in_flight(), 0, "crash write-offs settled every ticket");
}

#[test]
fn crash_reboot_one_shard_sync_lanes() {
    crash_reboot_one_shard(false);
}

#[test]
fn crash_reboot_one_shard_pipelined_lanes() {
    crash_reboot_one_shard(true);
}
