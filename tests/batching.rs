//! Batching beyond batch=16: parametrized amortization invariants
//! across batch limits {1, 64, 256} for both the synchronous loop and
//! the pipelined server, plus crash-mid-batch recovery and the
//! pipelined server's deferred-storage-failure surfacing.

mod common;

use std::sync::Arc;

use common::{all_modes, mk_client, mk_server, Mode};
use lcm::core::admin::AdminHandle;
use lcm::core::pipeline::PipelinedServer;
use lcm::core::server::{BatchServer, LcmServer};
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::{KvOp, KvResult};
use lcm::kvs::store::KvStore;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

const BATCH_LIMITS: [usize; 3] = [1, 64, 256];
const GROUP: u32 = 256;

fn setup(
    mode: Mode,
    n_clients: u32,
    batch: usize,
    seed: u64,
) -> (Box<dyn BatchServer>, Vec<KvsClient>) {
    let world = TeeWorld::new_deterministic(seed);
    let mut server = mk_server::<KvStore>(mode, &world, 1, Arc::new(MemoryStorage::new()), batch);
    assert!(server.boot().unwrap());
    let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let clients = ids
        .iter()
        .map(|&id| mk_client(mode, id, admin.client_key()))
        .collect();
    (server, clients)
}

/// Queues one op per client (no processing in between), then processes
/// everything; returns the replies routed per client.
fn submit_round(
    server: &mut Box<dyn BatchServer>,
    clients: &mut [KvsClient],
    round: u32,
) -> Vec<(ClientId, Vec<u8>)> {
    for (i, c) in clients.iter_mut().enumerate() {
        let wire = c
            .invoke_wire(&KvOp::Put(
                format!("k{i}").into_bytes(),
                round.to_be_bytes().to_vec(),
            ))
            .unwrap();
        server.submit(wire);
    }
    server.process_all().unwrap()
}

fn complete_round(clients: &mut [KvsClient], replies: Vec<(ClientId, Vec<u8>)>) {
    for (id, wire) in replies {
        let c = clients
            .iter_mut()
            .find(|c| c.lcm().id() == id)
            .expect("reply for a known client");
        let done = c.complete(&wire).unwrap();
        assert_eq!(done.result, KvResult::Stored);
    }
}

/// The amortization invariant: with batch limit B and M queued ops,
/// one round costs exactly ceil(M/B) seal-and-store cycles per shard
/// (summed over the shards that took traffic), and every op is
/// counted.
fn amortization_invariants_across_batch_limits(mode: Mode) {
    let keys: Vec<Vec<u8>> = (0..GROUP).map(|i| format!("k{i}").into_bytes()).collect();
    for &batch in &BATCH_LIMITS {
        let (mut server, mut clients) = setup(mode, GROUP, batch, 11_000 + batch as u64);
        let m = GROUP as u64;
        let expected_batches_per_round = common::expected_batches(mode, &keys, batch);

        for round in 0..2u32 {
            let batches_before = server.batches_processed();
            let ops_before = server.ops_processed();
            let replies = submit_round(&mut server, &mut clients, round);
            assert_eq!(replies.len(), GROUP as usize, "batch={batch}");
            complete_round(&mut clients, replies);
            assert_eq!(
                server.ops_processed() - ops_before,
                m,
                "batch={batch}: every op counted"
            );
            assert_eq!(
                server.batches_processed() - batches_before,
                expected_batches_per_round,
                "batch={batch}: ceil(M/B) seal-and-store cycles"
            );
        }
        server.flush_persists().unwrap();
    }
}

/// Batching must not change results: the final store contents agree
/// across all batch limits.
fn batch_limits_agree_on_state(mode: Mode) {
    let mut finals = Vec::new();
    for &batch in &BATCH_LIMITS {
        // Same seed for every batch limit: identical keys and ops.
        let (mut server, mut clients) = setup(mode, 8, batch, 12_345);
        for round in 0..3u32 {
            let replies = submit_round(&mut server, &mut clients, round);
            complete_round(&mut clients, replies);
        }
        let snapshot: Vec<_> = (0..8)
            .map(|i| {
                clients[i]
                    .get(&mut server, format!("k{i}").as_bytes())
                    .unwrap()
            })
            .collect();
        finals.push(snapshot);
    }
    assert_eq!(finals[0], finals[1]);
    assert_eq!(finals[1], finals[2]);
}

/// Crash-mid-batch: the server dies after executing a full batch but
/// before any reply is delivered. Every client retries; recovery must
/// be exactly-once (cached replies, original sequence numbers).
fn crash_mid_batch_recovery(mode: Mode) {
    let (mut server, mut clients) = setup(mode, 64, 64, 13_000);
    // Round 0 completes normally so every client has context.
    let replies = submit_round(&mut server, &mut clients, 0);
    complete_round(&mut clients, replies);

    // Round 1: the whole batch executes, then the server crashes with
    // all replies undelivered.
    let replies = submit_round(&mut server, &mut clients, 1);
    assert_eq!(replies.len(), 64);
    drop(replies);
    server.crash();
    assert!(!server.boot().unwrap(), "recovered, not re-provisioned");

    // Timeouts expire: everyone retries; T resends cached results.
    for c in clients.iter_mut() {
        server.submit(c.lcm_mut().retry().unwrap());
    }
    let replies = server.process_all().unwrap();
    assert_eq!(replies.len(), 64);
    for (id, wire) in replies {
        let c = clients.iter_mut().find(|c| c.lcm().id() == id).unwrap();
        let done = c.complete(&wire).unwrap();
        assert_eq!(
            done.completion.seq.0,
            c.lcm().last_seq().0,
            "cached reply, original sequence number"
        );
    }

    // Service continues normally afterwards.
    let replies = submit_round(&mut server, &mut clients, 2);
    complete_round(&mut clients, replies);
}

/// Regression for reply ordering under sharded fan-out: replies from
/// concurrent shards must reach each client in that client's
/// submission order, even when one shard's queue is much deeper than
/// the other's. (The client completes replies against its oldest
/// pending operation, so any reordering trips the echo check as a
/// violation.)
fn replies_ordered_per_client_under_fanout(mode: Mode) {
    use lcm::core::transport::Hub;
    let (server, mut clients) = setup(mode, 10, 4, 16_000);
    let mut hub = Hub::new(server);
    let ports: Vec<_> = clients.iter().map(|c| hub.connect(c.lcm().id())).collect();

    // Two keys on different shards when sharded (any two keys when
    // not): k_busy's shard also absorbs filler traffic from the other
    // clients, so the observer's first op finishes in a *later* batch
    // round than its second unless ordering is enforced.
    let k_busy = b"ka0".to_vec();
    let mut k_idle = b"kb1".to_vec();
    if mode.shards() > 1 {
        let mut found = None;
        for i in 0..64u32 {
            let cand = format!("kb{i}").into_bytes();
            if mode.shard_of_key(&cand) != mode.shard_of_key(&k_busy) {
                found = Some(cand);
                break;
            }
        }
        k_idle = found.expect("some key maps to another shard");
    }

    let (observer, fillers) = clients.split_at_mut(1);
    let observer = &mut observer[0];

    // Nine filler clients each queue one op on the busy key's shard
    // (batch limit 4 ⇒ three processing rounds there), all before the
    // observer submits.
    for (f, c) in fillers.iter_mut().enumerate() {
        let wire = c
            .invoke_wire(&KvOp::Put(k_busy.clone(), vec![f as u8]))
            .unwrap();
        ports[f + 1].send(wire);
    }
    // Observer: op 1 to the (deep) busy shard, then op 2 to the idle
    // shard — in flight *together* when the deployment has more than
    // one shard (the client pipelines across shards only; with one
    // shard op 2 follows op 1's completion). The idle shard finishes
    // op 2 in its first round; op 1 waits behind the fillers — yet the
    // replies must come back in submission order.
    ports[0].send(
        observer
            .invoke_wire(&KvOp::Put(k_busy.clone(), b"first".to_vec()))
            .unwrap(),
    );
    let pipelined_second = mode.shards() > 1;
    if pipelined_second {
        ports[0].send(
            observer
                .invoke_wire(&KvOp::Put(k_idle.clone(), b"second".to_vec()))
                .unwrap(),
        );
    }

    // One pump processes everything; the hub delivers per-client in
    // submission order.
    hub.pump().unwrap();
    let r1 = ports[0].try_recv().expect("first reply");
    let done1 = observer.complete(&r1).unwrap();
    assert_eq!(done1.result, KvResult::Stored);
    if !pipelined_second {
        ports[0].send(
            observer
                .invoke_wire(&KvOp::Put(k_idle.clone(), b"second".to_vec()))
                .unwrap(),
        );
        hub.pump().unwrap();
    }
    let r2 = ports[0].try_recv().expect("second reply");
    let done2 = observer.complete(&r2).unwrap();
    assert_eq!(done2.result, KvResult::Stored);
    assert!(!observer.lcm().has_pending());
    assert!(!observer.lcm().is_halted());
    // Filler replies all routed to their own ports.
    for (f, c) in fillers.iter_mut().enumerate() {
        while let Some(wire) = ports[f + 1].try_recv() {
            c.complete(&wire).unwrap();
        }
    }
    assert_eq!(hub.dropped_replies(), 0);
}

all_modes!(
    amortization_invariants_across_batch_limits,
    batch_limits_agree_on_state,
    crash_mid_batch_recovery,
    replies_ordered_per_client_under_fanout,
);

fn pipelined_setup(
    seed: u64,
    storage: Arc<dyn lcm::storage::StableStorage>,
) -> (PipelinedServer<KvStore>, KvsClient) {
    let world = TeeWorld::new_deterministic(seed);
    let platform = world.platform_deterministic(1);
    let mut server = LcmServer::<KvStore>::new(&platform, storage, 1).into_pipelined();
    server.boot().unwrap();
    let mut admin =
        AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let client = KvsClient::new(ClientId(1), admin.client_key());
    (server, client)
}

/// Pipelined counterpart of the synchronous flaky-disk scenario in
/// tests/end_to_end.rs: the operation's reply outruns the failing
/// persist, so the storage error surfaces *deferred* — on flush — as
/// an error, never as a violation. After a restart, the lost write
/// behaves like a rollback, which the client detects.
#[test]
fn pipelined_storage_failure_surfaces_deferred_then_detected() {
    use lcm::storage::{FailureMode, FlakyStorage};
    let flaky = Arc::new(FlakyStorage::new(MemoryStorage::new()));
    let (mut server, mut client) = pipelined_setup(14_000, flaky.clone());

    client.put(&mut server, b"k", b"v1").unwrap();
    server.flush().unwrap();

    // Disk starts failing. The reply still arrives (async write!)...
    flaky.set_mode(FailureMode::FailStores);
    client
        .run(&mut server, &KvOp::Put(b"k".to_vec(), b"v2".to_vec()))
        .unwrap();
    // ...and the failure surfaces on the flush barrier as a storage
    // error, not a protocol violation.
    let err = server.flush().unwrap_err();
    assert!(!err.is_violation(), "I/O failure misclassified: {err:?}");
    assert!(flaky.failures() >= 1);

    // Restart on a recovered disk: v2's persist was lost, so the
    // client — which holds v2's acknowledgement — detects the gap.
    flaky.set_mode(FailureMode::None);
    server.crash();
    server.boot().unwrap();
    let err = client
        .run(&mut server, &KvOp::Get(b"k".to_vec()))
        .unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
}

/// The pipelined server's bounded writer queue really exerts
/// back-pressure: with a slow disk and a 1-slot queue, execution
/// blocks at least once.
#[test]
fn pipelined_backpressure_is_observable() {
    use lcm::storage::DelayedStorage;
    use std::time::Duration;
    let slow = Arc::new(DelayedStorage::new(
        MemoryStorage::new(),
        Duration::from_millis(2),
    ));
    let world = TeeWorld::new_deterministic(15_000);
    let platform = world.platform_deterministic(1);
    let server = LcmServer::<KvStore>::new(&platform, slow, 1);
    let mut server = PipelinedServer::with_queue_capacity(server, 1);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 15);
    admin.bootstrap(&mut server).unwrap();
    let mut client = KvsClient::new(ClientId(1), admin.client_key());

    for i in 0..10u32 {
        client
            .run(
                &mut server,
                &KvOp::Put(b"k".to_vec(), i.to_be_bytes().to_vec()),
            )
            .unwrap();
    }
    server.flush().unwrap();
    assert!(
        server.backpressure_events() > 0,
        "a 1-slot writer queue behind a slow disk must block execution"
    );
    assert_eq!(server.persists_completed(), server.batches_processed());
}
