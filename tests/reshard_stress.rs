//! Live-resharding stress: client threads hammer a sharded deployment
//! through the concurrent front-end — half of them pinned to slices of
//! one hot shard — while the main thread continuously migrates slices:
//! heat-driven rebalance passes interleaved with seeded forced moves,
//! so the slice table keeps advancing under live load.
//!
//! Three properties under churn:
//!
//! 1. **Zero lost acknowledged writes** — every completed increment of
//!    a private counter reads exactly its round number, through any
//!    number of epoch bumps; a slice migrating mid-stream must carry
//!    its V-map entries and chain continuation to the new owner.
//! 2. **No false violations** — live migration is an honest
//!    reconfiguration, so no client may ever halt; stale-epoch wires
//!    get typed redirects, never `WrongShard` verdicts.
//! 3. **Redirect convergence** — a client chasing redirects reaches
//!    the slice's current owner in bounded steps no matter how many
//!    epochs it is behind.
//!
//! Both lanes run: sync shard servers and pipelined ones. The CI
//! `reshard-stress` job repeats this suite with distinct
//! `LCM_STRESS_SEED`s; the seed picks the forced-move schedule and is
//! logged so a failing schedule can be replayed.

use std::sync::Arc;
use std::time::Duration;

use lcm::core::admin::AdminHandle;
use lcm::core::client::{LcmClient, WriteOutcome};
use lcm::core::functionality::Counter;
use lcm::core::routing::SLICE_COUNT;
use lcm::core::server::BatchServer;
use lcm::core::shard::{self, build_sharded, ShardedServer};
use lcm::core::stability::Quorum;
use lcm::core::transport::{DriveMode, Frontend, FrontendPort};
use lcm::core::types::ClientId;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

const SHARDS: u32 = 4;
const HOT_SHARD: u32 = 0;
/// Clients 1..=4 hammer slices of the hot shard; 5..=6 spread
/// uniformly.
const CLIENT_THREADS: u32 = 6;
const HOT_CLIENTS: u32 = 4;
const DRIVER_THREADS: usize = 3;
const CHURN_CYCLES: usize = 5;
const INCS_PER_NAME: u64 = 8;
/// Retry timeout: long enough that an idle-system reply never races
/// it, short enough to converge through a migration window quickly.
const RETRY_AFTER: Duration = Duration::from_millis(500);

fn stress_seed() -> u64 {
    let seed = std::env::var("LCM_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    eprintln!(
        "reshard_stress config: seed={seed} shards={SHARDS} hot_shard={HOT_SHARD} \
         client_threads={CLIENT_THREADS} hot_clients={HOT_CLIENTS} \
         driver_threads={DRIVER_THREADS} churn_cycles={CHURN_CYCLES}"
    );
    seed
}

type Fleet = (
    Frontend<ShardedServer<Box<dyn BatchServer>>>,
    Vec<LcmClient>,
);

fn build_fleet(pipelined: bool, seed: u64) -> Fleet {
    let world = TeeWorld::new_deterministic(48_000 + seed);
    let server = build_sharded::<Counter>(
        &world,
        1,
        Arc::new(MemoryStorage::new()),
        16,
        SHARDS,
        pipelined,
    );
    let mut fe = Frontend::new(server, DRIVER_THREADS, DriveMode::Continuous).unwrap();
    assert!(fe.boot().unwrap());
    let ids: Vec<ClientId> = (1..=CLIENT_THREADS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut fe).unwrap();
    let clients = ids
        .iter()
        .map(|&id| LcmClient::new_sharded(id, admin.client_key(), SHARDS))
        .collect();
    (fe, clients)
}

/// The private counter names one client hammers: hot clients pin all
/// their names to (genesis) slices of the hot shard, the rest cover
/// every shard once.
fn names_for(client: ClientId) -> Vec<Vec<u8>> {
    if client.0 <= HOT_CLIENTS {
        (0..SHARDS)
            .map(|n| shard::nth_key_routing_to(HOT_SHARD, SHARDS, &format!("h{}-", client.0), n))
            .collect()
    } else {
        (0..SHARDS)
            .map(|s| shard::nth_key_routing_to(s, SHARDS, &format!("u{}-", client.0), 0))
            .collect()
    }
}

/// Continuous slice migration under live hot-skew load.
fn continuous_migration_under_load(pipelined: bool) {
    let seed = stress_seed();
    let (mut fe, clients) = build_fleet(pipelined, seed);
    let handles: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let port: FrontendPort = fe.connect(client.id());
            std::thread::spawn(move || {
                let names = names_for(client.id());
                for round in 1..=INCS_PER_NAME {
                    for name in &names {
                        let op = Counter::inc_op(name, 1);
                        port.send(client.invoke_for::<Counter>(&op).unwrap());
                        let mut attempts = 0u32;
                        let value = loop {
                            match port.recv_timeout(RETRY_AFTER) {
                                Some(reply) => match client.handle_reply_on(&reply).unwrap() {
                                    (_, WriteOutcome::Done(done)) => {
                                        break Counter::decode_result(&done.result).unwrap();
                                    }
                                    (_, WriteOutcome::Redirected { .. }) => {
                                        // Chase: re-mint under the
                                        // newer table the redirect
                                        // taught us.
                                        attempts += 1;
                                        assert!(
                                            attempts < 120,
                                            "redirect chase diverged: client {:?} name {:?}",
                                            client.id(),
                                            String::from_utf8_lossy(name)
                                        );
                                        port.send(client.invoke_for::<Counter>(&op).unwrap());
                                    }
                                },
                                None => {
                                    attempts += 1;
                                    assert!(
                                        attempts < 120,
                                        "op starved: client {:?} name {:?} round {round}",
                                        client.id(),
                                        String::from_utf8_lossy(name)
                                    );
                                    port.send(client.retry().unwrap());
                                }
                            }
                        };
                        // Exactly-once through any number of slice
                        // moves: the i-th completed increment reads i.
                        assert_eq!(
                            value,
                            round,
                            "lost or doubled acknowledged write: client {:?} name {:?}",
                            client.id(),
                            String::from_utf8_lossy(name)
                        );
                        while port.try_recv().is_some() {}
                    }
                }
                assert!(
                    !client.is_halted(),
                    "live migration must never surface as a violation"
                );
                u64::from(SHARDS) * INCS_PER_NAME
            })
        })
        .collect();

    // The migration loop: heat-driven rebalance passes (the monitor a
    // deployment would run) interleaved with seeded forced moves, so
    // the epoch advances even when the sampled heat happens to look
    // balanced. A tiny LCG on the seed picks the forced schedule.
    let mut rng = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    let mut forced = 0u64;
    for _ in 0..CHURN_CYCLES {
        std::thread::sleep(Duration::from_millis(60));
        if let Some((slice, to)) = fe.server_mut().rebalance_once().unwrap() {
            eprintln!("rebalance: slice {slice} -> shard {to}");
        }
        rng = rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let slice = (rng >> 33) as u32 % SLICE_COUNT;
        let owner = fe.server_mut().current_table().owner(slice);
        let to = (owner + 1 + ((rng >> 11) as u32 % (SHARDS - 1))) % SHARDS;
        if to != owner {
            fe.migrate_slice(slice, to).unwrap();
            forced += 1;
        }
    }

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, u64::from(CLIENT_THREADS * SHARDS) * INCS_PER_NAME);
    assert!(
        fe.routing_epoch() >= forced,
        "every forced move must have advanced the epoch"
    );
    assert!(forced > 0, "the seeded schedule always forces moves");
    // Migration is honest reconfiguration: nothing may surface as a
    // protocol violation, and every ticket settles.
    if let Err(e) = fe.process_all() {
        assert!(!e.is_violation(), "migration noise misclassified: {e:?}");
    }
    assert_eq!(fe.stats().dropped_replies(), 0);
    assert_eq!(fe.in_flight(), 0, "every redirect and retry settled");
}

#[test]
fn continuous_migration_under_load_sync_lanes() {
    continuous_migration_under_load(false);
}

#[test]
fn continuous_migration_under_load_pipelined_lanes() {
    continuous_migration_under_load(true);
}
