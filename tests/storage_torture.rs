//! Storage-engine torture: the sealed delta log under adversarial
//! media and arbitrary crash points.
//!
//! Three attack surfaces, all driven through the full server stack
//! (enclave + sealing + delta-log engine), never against the engine in
//! isolation:
//!
//! 1. **Torn writes** — every write reaching the medium keeps only a
//!    prefix (`AdversaryMode::TornWrites`), modelling power loss
//!    mid-sector or a lying disk. Recovery must truncate at the last
//!    sealed frame boundary; a client that saw acknowledgements must
//!    either read its values back intact or detect the loss as a
//!    rollback (§2.3) — never read a wrong value silently.
//! 2. **Reordered flushes** — the medium commits buffered write pairs
//!    newest-first and a power failure takes the volatile cache
//!    (`AdversaryMode::ReorderedFlush` + `drop_buffered`). The
//!    engine's epoch-keyed records must keep replay idempotent.
//! 3. **Kill points** (proptests) — an honest recording of every inner
//!    write, cut at *every* index: recovery from any prefix must boot,
//!    re-verify the hash chain end-to-end, and expose exactly a prefix
//!    of the acknowledged operations, with everything whose commit
//!    write survived the cut still present.
//!
//! The CI `storage-torture` job repeats this suite with distinct
//! `LCM_STRESS_SEED`s; the seed is logged so a failing schedule can be
//! replayed.

mod common;

use std::sync::{Arc, Mutex};

use lcm::core::admin::AdminHandle;
use lcm::core::server::{BatchServer, LcmServer};
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::KvOp;
use lcm::kvs::store::KvStore;
use lcm::storage::{
    AdversaryMode, DeltaLogConfig, DeltaLogStorage, MemoryStorage, Result as StorageResult,
    RollbackStorage, StableStorage,
};
use lcm::tee::world::TeeWorld;
use proptest::prelude::*;

fn stress_seed() -> u64 {
    let seed = std::env::var("LCM_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    eprintln!("storage_torture config: seed={seed}");
    seed
}

/// Tiny xorshift so the adversary's tear widths vary per CI seed
/// without pulling in a full RNG.
fn mix(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

const WARMUP: usize = 4;
const TORTURED: usize = 6;

/// Sync server (batch 1) over a fresh delta-log engine over `disk`.
/// Tiny segments force seal + compaction traffic on short schedules.
fn mk_engine_server(
    world: &TeeWorld,
    disk: Arc<dyn StableStorage>,
    segment_bytes: usize,
) -> LcmServer<KvStore> {
    let engine = DeltaLogStorage::with_config(disk, DeltaLogConfig { segment_bytes })
        .expect("engine recovery must succeed on any honest-prefix or torn medium");
    let platform = world.platform_deterministic(1);
    LcmServer::<KvStore>::new(&platform, Arc::new(engine), 1)
}

/// The full put schedule, in acknowledgement order.
fn schedule() -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut s = Vec::new();
    for i in 0..WARMUP {
        s.push((
            format!("warm{i}").into_bytes(),
            format!("warm-value-{i}").into_bytes(),
        ));
    }
    for i in 0..TORTURED {
        s.push((format!("torn{i}").into_bytes(), torn_value(i)));
    }
    s
}

/// After the crash: a fresh client reads back the schedule and the
/// surviving state must be a *prefix* — once one key is missing, every
/// later one must be missing too, and every surviving value must be
/// the one acknowledged. A fresh client carries no history, so any
/// self-consistent (possibly stale) state verifies for it; the prefix
/// shape is what recovery's truncate-at-sealed-boundary guarantees,
/// and staleness is the acknowledging client's job to detect.
fn assert_prefix_consistent(server: &mut dyn BatchServer, admin: &AdminHandle) {
    let mut fresh = KvsClient::new_sharded(ClientId(2), admin.client_key(), 1);
    let mut lost_from = None;
    for (i, (key, value)) in schedule().iter().enumerate() {
        let got = fresh
            .get(server, key)
            .expect("fresh client reads verify on recovered state");
        match got {
            Some(v) => {
                assert!(
                    lost_from.is_none(),
                    "op {i} survived although op {} was lost: not a prefix",
                    lost_from.unwrap()
                );
                assert_eq!(&v, value, "op {i} recovered with a wrong value");
            }
            None => lost_from = lost_from.or(Some(i)),
        }
    }
}

/// Values large enough that the torn phase crosses segment seals and
/// the delta→checkpoint cadence, so tears land on every record type.
fn torn_value(i: usize) -> Vec<u8> {
    let mut v = format!("torn-value-{i}-").into_bytes();
    v.resize(600, b'.');
    v
}

/// The client that *saw the acknowledgements* reads after recovery:
/// either every acknowledged value is intact, or the very first
/// divergence is detected as a rollback violation and the client
/// halts. A wrong value or a silent gap is the one forbidden outcome.
fn assert_acknowledged_client_outcome(server: &mut dyn BatchServer, client: &mut KvsClient) {
    for (i, (key, value)) in schedule().iter().enumerate() {
        match client.get(server, key) {
            Ok(got) => assert_eq!(
                got.as_ref(),
                Some(value),
                "acknowledged op {i} served wrong/missing without a violation"
            ),
            Err(e) => {
                // Detection can land on either side: the client halts
                // on a reply extending the wrong chain, or the server
                // enclave spots the client's attested counter running
                // ahead of the recorded context (claimed #n > recorded
                // #m ⇒ rollback) and reports the violation itself.
                assert!(
                    client.lcm().is_halted() || matches!(e, lcm::core::LcmError::Violation(_)),
                    "read failed without a detected violation: {e:?}"
                );
                return; // detection: the loss cannot be papered over
            }
        }
    }
}

/// Runs the warm-up + tortured schedule against an engine over the
/// adversarial disk, crashes (fresh engine, fresh server — the old
/// engine's in-memory caches die with the process), and checks both
/// the fresh-client prefix shape and the acknowledged client's
/// detection guarantee.
fn torture_run(seed: u64, adversary_phase: impl Fn(&RollbackStorage, &mut u64)) {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let world = TeeWorld::new_deterministic(7_000 + seed);
    let disk = Arc::new(RollbackStorage::new());
    let mut server = mk_engine_server(&world, disk.clone(), 256);
    server.boot().unwrap();
    let mut admin = AdminHandle::new_deterministic(
        &world,
        vec![ClientId(1), ClientId(2)],
        Quorum::Majority,
        21,
    );
    admin.bootstrap(&mut server).unwrap();
    let mut client = KvsClient::new_sharded(ClientId(1), admin.client_key(), 1);

    for i in 0..WARMUP {
        client
            .put(
                &mut server,
                format!("warm{i}").as_bytes(),
                format!("warm-value-{i}").as_bytes(),
            )
            .unwrap();
    }

    adversary_phase(&disk, &mut rng);
    for i in 0..TORTURED {
        // The server believes every persist succeeded; the adversary
        // decides what actually reaches the medium.
        client
            .run(
                &mut server,
                &KvOp::Put(format!("torn{i}").into_bytes(), torn_value(i)),
            )
            .unwrap();
    }

    // Power failure: the process (and any volatile cache) is gone.
    drop(server);
    disk.drop_buffered();
    disk.set_mode(AdversaryMode::Honest);

    let mut server = mk_engine_server(&world, disk, 256);
    match server.boot() {
        Ok(_) => {
            assert_prefix_consistent(&mut server, &admin);
            assert_acknowledged_client_outcome(&mut server, &mut client);
        }
        // The enclave refusing a broken chain outright is the other
        // legitimate detection outcome: adversarial media may leave a
        // checkpoint whose delta chain no longer connects, and replay
        // must reject the splice rather than serve it.
        Err(e) => assert!(
            matches!(e, lcm::core::LcmError::Violation(_)),
            "recovery on adversarial media must detect, not fail: {e:?}"
        ),
    }
}

#[test]
fn torn_writes_recover_to_a_detectable_prefix() {
    let mut seed = stress_seed();
    for round in 0..5 {
        // Tear widths from one byte up to roughly a whole frame.
        let keep = 1 + (mix(&mut seed) % 640) as usize;
        eprintln!("torn-writes round {round}: keep={keep}");
        torture_run(seed.wrapping_add(round), |disk, _| {
            disk.set_mode(AdversaryMode::TornWrites { keep });
        });
    }
}

#[test]
fn reordered_flushes_with_power_failure_recover_to_a_detectable_prefix() {
    let mut seed = stress_seed();
    for round in 0..5 {
        mix(&mut seed);
        eprintln!("reordered-flush round {round}");
        torture_run(seed.wrapping_add(round), |disk, _| {
            disk.set_mode(AdversaryMode::ReorderedFlush);
        });
    }
}

#[test]
fn torn_writes_after_honest_flush_keep_the_flushed_state() {
    // Degenerate tear (keep = 0): nothing written during the tortured
    // phase reaches the medium at all. Recovery must land exactly on
    // the warm-up state and the acknowledged client must halt.
    torture_run(stress_seed(), |disk, _| {
        disk.set_mode(AdversaryMode::TornWrites { keep: 0 });
    });
}

// ---------------------------------------------------------------------
// Kill-point recovery proptests: cut the honest write log everywhere.
// ---------------------------------------------------------------------

/// One recorded inner write: `(slot, blob)`.
type WriteRecord = (String, Vec<u8>);

/// Records every inner write in order while forwarding to a real
/// memory store — the honest write log the kill points cut.
#[derive(Clone)]
struct RecorderStorage {
    inner: Arc<MemoryStorage>,
    log: Arc<Mutex<Vec<WriteRecord>>>,
}

impl RecorderStorage {
    fn new() -> Self {
        RecorderStorage {
            inner: Arc::new(MemoryStorage::new()),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn writes(&self) -> Vec<WriteRecord> {
        self.log.lock().unwrap().clone()
    }
}

impl StableStorage for RecorderStorage {
    fn store(&self, slot: &str, blob: &[u8]) -> StorageResult<()> {
        self.log
            .lock()
            .unwrap()
            .push((slot.to_string(), blob.to_vec()));
        self.inner.store(slot, blob)
    }

    fn load(&self, slot: &str) -> StorageResult<Option<Vec<u8>>> {
        self.inner.load(slot)
    }
}

proptest! {
    // Each case replays every kill point of its schedule, so a few
    // cases already cover hundreds of recoveries.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash-safety invariant: for *every* prefix of the inner write
    /// log, recovery boots, the hash chain verifies end-to-end (a
    /// fresh client's reads succeed), the surviving puts form a
    /// contiguous prefix of the schedule, and every put acknowledged
    /// by write `k` is still present.
    #[test]
    fn every_kill_point_recovers_prefix_consistent(
        world_seed in 0u64..1_000,
        n_puts in 1usize..8,
        value_len in 0usize..400,
        segment_bytes in prop_oneof![Just(64usize), Just(192), Just(1024)],
    ) {
        let world = TeeWorld::new_deterministic(9_000 + world_seed);
        let recorder = RecorderStorage::new();
        let mut server = mk_engine_server(&world, Arc::new(recorder.clone()), segment_bytes);
        server.boot().unwrap();
        let mut admin = AdminHandle::new_deterministic(
            &world,
            vec![ClientId(1), ClientId(2)],
            Quorum::Majority,
            22,
        );
        admin.bootstrap(&mut server).unwrap();
        let mut client = KvsClient::new_sharded(ClientId(1), admin.client_key(), 1);

        // `persisted_by[i]` = write-log length when put i was
        // acknowledged: cuts at or past it must preserve put i.
        let mut persisted_by = Vec::with_capacity(n_puts);
        for i in 0..n_puts {
            let mut value = format!("v{i}-").into_bytes();
            value.resize(value.len() + value_len, b'=');
            client.put(&mut server, format!("key{i}").as_bytes(), &value).unwrap();
            persisted_by.push(recorder.writes().len());
        }
        drop(server);
        let writes = recorder.writes();

        for k in 0..=writes.len() {
            let disk: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
            for (slot, blob) in &writes[..k] {
                disk.store(slot, blob).unwrap();
            }
            let mut server = mk_engine_server(&world, disk, segment_bytes);
            server.boot().unwrap_or_else(|e| panic!(
                "recovery from honest prefix k={k}/{} failed: {e:?}", writes.len()
            ));

            let must_hold = persisted_by.iter().filter(|&&idx| idx <= k).count();
            if must_hold == 0 {
                continue; // cut may predate provisioning: nothing readable yet
            }
            let mut fresh = KvsClient::new_sharded(ClientId(2), admin.client_key(), 1);
            let mut lost_from = None;
            for i in 0..n_puts {
                let got = fresh
                    .get(&mut server, format!("key{i}").as_bytes())
                    .unwrap_or_else(|e| panic!("verified read failed at k={k}: {e:?}"));
                match got {
                    Some(v) => {
                        prop_assert!(
                            lost_from.is_none(),
                            "k={k}: key{i} present after key{} was lost", lost_from.unwrap()
                        );
                        let mut expect = format!("v{i}-").into_bytes();
                        expect.resize(expect.len() + value_len, b'=');
                        prop_assert!(v == expect, "k={}: key{} wrong value", k, i);
                    }
                    None => lost_from = lost_from.or(Some(i)),
                }
            }
            let held = lost_from.unwrap_or(n_puts);
            prop_assert!(
                held >= must_hold,
                "k={k}: only {held} puts survived but {must_hold} were acknowledged \
                 by that write"
            );
        }
    }
}
