//! Adversarial integration tests: every power the paper grants the
//! malicious server (§2.3), exercised against the real stack, must be
//! either harmless or detected.
//!
//! Each scenario runs against both server modes (synchronous loop and
//! asynchronous-write pipeline). Where the adversary inspects or
//! re-modes storage, the scenario first calls
//! `BatchServer::flush_persists` — the adversary acts on a quiescent
//! medium, so in-flight background writes cannot race the attack
//! setup (on the synchronous server this is a no-op).

mod common;

use std::sync::Arc;

use common::{all_modes, mk_client, mk_server, Mode};
use lcm::core::admin::AdminHandle;
use lcm::core::routing::slice_of;
use lcm::core::server::BatchServer;
use lcm::core::shard::route_hash;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::core::verify::check_single_history;
use lcm::core::LcmError;
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::KvOp;
use lcm::kvs::store::KvStore;
use lcm::net::Duplex;
use lcm::storage::{AdversaryMode, RollbackStorage, StableStorage, Version};
use lcm::tee::world::TeeWorld;

fn setup_adversarial(
    mode: Mode,
    n_clients: u32,
    seed: u64,
) -> (
    TeeWorld,
    Arc<RollbackStorage>,
    Box<dyn BatchServer>,
    AdminHandle,
    Vec<KvsClient>,
) {
    let world = TeeWorld::new_deterministic(seed);
    let storage = Arc::new(RollbackStorage::new());
    let mut server = mk_server::<KvStore>(mode, &world, 1, storage.clone(), 1);
    server.boot().unwrap();
    let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let clients = ids
        .iter()
        .map(|&id| {
            let mut c = mk_client(mode, id, admin.client_key());
            c.lcm_mut().set_recording(true);
            c
        })
        .collect();
    (world, storage, server, admin, clients)
}

/// Forks `storage` at the latest version of every shard's slots and
/// boots a second server instance of the same mode on the branch.
fn fork_second_instance(
    mode: Mode,
    storage: &Arc<RollbackStorage>,
    seed: u64,
) -> Box<dyn BatchServer> {
    // Seed the branch from shard 0's state, then copy every remaining
    // slot (other shards' states, all key blobs) at latest.
    let first_state = mode.state_slot(0);
    let state_v = storage.history().latest_version(&first_state).unwrap();
    let branch = storage.fork_at(&first_state, state_v).unwrap();
    for shard in 0..mode.shards() {
        for replica in 0..mode.replicas() {
            let mut slots = vec![mode.member_key_slot(shard, replica)];
            let state = mode.member_state_slot(shard, replica);
            if state != first_state {
                slots.push(state);
            }
            for slot in slots {
                let v = storage.history().latest_version(&slot).unwrap();
                branch
                    .store(&slot, &storage.history().load_version(&slot, v).unwrap())
                    .unwrap();
            }
        }
    }
    let world = TeeWorld::new_deterministic(seed);
    let mut server_b = mk_server::<KvStore>(mode, &world, 1, Arc::new(branch), 1);
    server_b.boot().unwrap();
    server_b
}

fn rollback_one_step_detected_by_victim(mode: Mode) {
    let (_w, storage, mut server, _a, mut clients) = setup_adversarial(mode, 1, 21);
    let c = &mut clients[0];
    c.put(&mut server, b"k", b"v1").unwrap();
    c.put(&mut server, b"k", b"v2").unwrap();

    server.flush_persists().unwrap();
    storage.set_mode(AdversaryMode::ServeStale { steps_back: 1 });
    server.crash();
    server.boot().unwrap();

    let err = c.get(&mut server, b"k").unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
}

fn rollback_to_genesis_detected(mode: Mode) {
    let (_w, storage, mut server, _a, mut clients) = setup_adversarial(mode, 2, 22);
    clients[0].put(&mut server, b"k", b"v1").unwrap();
    clients[1].put(&mut server, b"k", b"v2").unwrap();

    // Roll all the way back to the freshly-provisioned state.
    server.flush_persists().unwrap();
    storage.set_mode(AdversaryMode::ServeVersion(Version(0)));
    server.crash();
    server.boot().unwrap();

    let err = clients[0].get(&mut server, b"k").unwrap_err();
    assert!(err.is_violation());
}

fn dropped_writes_surface_as_rollback_on_restart(mode: Mode) {
    let (_w, storage, mut server, _a, mut clients) = setup_adversarial(mode, 1, 23);
    let c = &mut clients[0];
    c.put(&mut server, b"k", b"v1").unwrap();
    // The server silently discards all subsequent persistence.
    server.flush_persists().unwrap();
    storage.set_mode(AdversaryMode::DropWrites);
    c.put(&mut server, b"k", b"v2").unwrap();
    c.put(&mut server, b"k", b"v3").unwrap();

    server.flush_persists().unwrap();
    storage.set_mode(AdversaryMode::Honest);
    server.crash();
    server.boot().unwrap();

    // T recovered from the last version that actually hit storage; the
    // client's context is ahead ⇒ detected.
    let err = c.get(&mut server, b"k").unwrap_err();
    assert!(err.is_violation());
}

fn fork_detected_when_clients_cross(mode: Mode) {
    let (_w, storage, mut server_a, _admin, mut clients) = setup_adversarial(mode, 3, 24);
    let (alice, rest) = clients.split_at_mut(1);
    let alice = &mut alice[0];
    let bob = &mut rest[0];

    alice.put(&mut server_a, b"doc", b"v1").unwrap();
    bob.put(&mut server_a, b"doc", b"v2").unwrap();

    // Fork the storage and start a second instance.
    server_a.flush_persists().unwrap();
    let mut server_b = fork_second_instance(mode, &storage, 24);

    // Divergent progress on both branches.
    alice.put(&mut server_a, b"doc", b"a-edit").unwrap();
    bob.put(&mut server_b, b"doc", b"b-edit").unwrap();

    // Any crossing detects the fork.
    let err = bob.get(&mut server_a, b"doc").unwrap_err();
    assert!(err.is_violation());
    // And the out-of-band record comparison sees divergent chains.
    assert!(check_single_history(&[alice.lcm().records(), bob.lcm().records()]).is_err());
}

fn forked_minority_never_becomes_stable(mode: Mode) {
    // 3 clients; the fork isolates one client on branch B. Its ops can
    // never reach majority stability there.
    let (_w, storage, mut server_a, _admin, mut clients) = setup_adversarial(mode, 3, 25);
    for c in clients.iter_mut() {
        c.put(&mut server_a, b"warm", b"up").unwrap();
    }
    server_a.flush_persists().unwrap();
    let mut server_b = fork_second_instance(mode, &storage, 25);

    let victim = &mut clients[2];
    for i in 0..10u32 {
        let done = victim
            .put(&mut server_b, b"lonely", &i.to_be_bytes())
            .unwrap();
        // The watermark can never cover the victim's new ops: no
        // majority of acknowledgers exists on branch B.
        assert!(done.stable < done.seq, "op {} must not stabilize", done.seq);
    }
    assert!(victim.lcm().stable_seq() <= victim.lcm().last_seq());
}

fn forked_views_never_join(mode: Mode) {
    // Fork-linearizability's no-join property on a real forked run:
    // after the branches diverge, the two clients' views never agree
    // on any later sequence number.
    use lcm::core::verify::check_no_join;
    let (_w, storage, mut server_a, _admin, mut clients) = setup_adversarial(mode, 3, 34);
    let (alice, rest) = clients.split_at_mut(1);
    let alice = &mut alice[0];
    let bob = &mut rest[0];

    alice.put(&mut server_a, b"doc", b"common-1").unwrap();
    bob.put(&mut server_a, b"doc", b"common-2").unwrap();

    server_a.flush_persists().unwrap();
    let mut server_b = fork_second_instance(mode, &storage, 34);

    // Extended divergent progress on both branches.
    for i in 0..5u32 {
        alice.put(&mut server_a, b"doc", &i.to_be_bytes()).unwrap();
        bob.put(&mut server_b, b"doc", &(100 + i).to_be_bytes())
            .unwrap();
    }

    // The common prefix agrees, the fork never rejoins.
    check_no_join(alice.lcm().records(), bob.lcm().records()).unwrap();
    // But the union is not a single history.
    assert!(check_single_history(&[alice.lcm().records(), bob.lcm().records()]).is_err());
}

fn replayed_invoke_halts_context(mode: Mode) {
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 26);
    let c = &mut clients[0];
    let duplex = Duplex::adversarial();
    duplex.to_server.set_auto_deliver(true);
    duplex.to_client.set_auto_deliver(true);

    let wire = c
        .invoke_wire(&KvOp::Put(b"k".to_vec(), b"v".to_vec()))
        .unwrap();
    duplex.client.send(wire.clone());
    server.submit(duplex.server.try_recv().unwrap());
    let replies = server.process_all().unwrap();
    duplex.server.send(replies[0].1.clone());
    c.complete(&duplex.client.try_recv().unwrap()).unwrap();

    // The server replays the captured request.
    duplex.to_server.inject(wire);
    server.submit(duplex.server.try_recv().unwrap());
    let err = server.process_all().unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
}

fn tampered_invoke_halts_context(mode: Mode) {
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 27);
    let c = &mut clients[0];
    let mut wire = c.invoke_wire(&KvOp::Get(b"k".to_vec())).unwrap();
    let mid = wire.len() / 2;
    wire[mid] ^= 0x40;
    server.submit(wire);
    let err = server.process_all().unwrap_err();
    assert!(err.is_violation());
}

fn tampered_reply_halts_client(mode: Mode) {
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 28);
    let c = &mut clients[0];
    server.submit(c.invoke_wire(&KvOp::Get(b"k".to_vec())).unwrap());
    let mut replies = server.process_all().unwrap();
    replies[0].1[3] ^= 0x01;
    let err = c.complete(&replies[0].1).unwrap_err();
    assert!(err.is_violation());
    assert!(c.lcm().is_halted());
}

fn reply_swapped_between_clients_detected(mode: Mode) {
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 2, 29);
    let w1 = clients[0]
        .invoke_wire(&KvOp::Put(b"a".to_vec(), b"1".to_vec()))
        .unwrap();
    let w2 = clients[1]
        .invoke_wire(&KvOp::Put(b"b".to_vec(), b"2".to_vec()))
        .unwrap();
    server.submit(w1);
    server.submit(w2);
    let replies = server.process_all().unwrap();
    // Malicious routing: client 0 gets client 1's reply. Replies are
    // FIFO per client but carry no cross-client order (the two ops may
    // live on different shards), so pick client 1's reply by id.
    let stolen = replies
        .iter()
        .find(|(id, _)| *id == clients[1].lcm().id())
        .map(|(_, wire)| wire.clone())
        .unwrap();
    let err = clients[0].complete(&stolen).unwrap_err();
    assert!(err.is_violation());
}

fn reordered_requests_from_one_client_detected(mode: Mode) {
    // FIFO violation: the adversary delays a client's first message
    // and delivers the (illegally obtained) second... since a correct
    // client never has two in flight, the adversary instead replays an
    // OLD buffered message after newer progress — same signature.
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 30);
    let c = &mut clients[0];
    let old_wire = c
        .invoke_wire(&KvOp::Put(b"k".to_vec(), b"old".to_vec()))
        .unwrap();
    server.submit(old_wire.clone());
    let replies = server.process_all().unwrap();
    c.complete(&replies[0].1).unwrap();
    server.submit(
        c.invoke_wire(&KvOp::Put(b"k".to_vec(), b"new".to_vec()))
            .unwrap(),
    );
    let replies = server.process_all().unwrap();
    c.complete(&replies[0].1).unwrap();

    server.submit(old_wire);
    assert!(server.process_all().unwrap_err().is_violation());
}

fn wrong_world_enclave_fails_bootstrap(mode: Mode) {
    // A server trying to run a lookalike enclave on a non-genuine
    // platform cannot pass attestation.
    let honest_world = TeeWorld::new_deterministic(31);
    let evil_world = TeeWorld::new_deterministic(666);
    let mut server =
        mk_server::<KvStore>(mode, &evil_world, 1, Arc::new(RollbackStorage::new()), 1);
    server.boot().unwrap();
    let mut admin =
        AdminHandle::new_deterministic(&honest_world, vec![ClientId(1)], Quorum::Majority, 31);
    assert!(admin.bootstrap(&mut server).is_err());
}

fn halted_context_refuses_everything(mode: Mode) {
    let (_w, _s, mut server, mut admin, mut clients) = setup_adversarial(mode, 1, 32);
    let c = &mut clients[0];
    // Trigger a violation.
    let mut wire = c.invoke_wire(&KvOp::Get(b"k".to_vec())).unwrap();
    wire[10] ^= 1;
    server.submit(wire);
    assert!(server.process_all().unwrap_err().is_violation());

    // Everything afterwards is refused, including admin operations.
    server.submit(c.lcm_mut().retry().unwrap());
    assert_eq!(server.process_all().unwrap_err(), LcmError::Halted);
    assert!(admin.status(&mut server).is_err());
}

fn stale_state_with_fresh_keyblob_detected(mode: Mode) {
    // Mixing blob versions (fresh key blob + stale state) is still a
    // rollback and must be caught.
    let (_w, storage, mut server, _a, mut clients) = setup_adversarial(mode, 1, 33);
    let c = &mut clients[0];
    c.put(&mut server, b"k", b"v1").unwrap();
    c.put(&mut server, b"k", b"v2").unwrap();
    server.flush_persists().unwrap();

    // Adversary: serve the victim shard (the one owning "k") its
    // second-to-latest state but the latest key blob; every other
    // shard gets honest latest blobs. Emulate by copying blobs into a
    // fresh honest storage.
    let victim = mode.shard_of_key(b"k");
    let mixed = lcm::storage::MemoryStorage::new();
    for shard in 0..mode.shards() {
        let state_slot = mode.state_slot(shard);
        let latest = storage.history().latest_version(&state_slot).unwrap();
        let state_v = if shard == victim {
            Version(latest.0 - 1)
        } else {
            latest
        };
        mixed
            .store(
                &state_slot,
                &storage
                    .history()
                    .load_version(&state_slot, state_v)
                    .unwrap(),
            )
            .unwrap();
        let key_slot = mode.key_slot(shard);
        let key_v = storage.history().latest_version(&key_slot).unwrap();
        mixed
            .store(
                &key_slot,
                &storage.history().load_version(&key_slot, key_v).unwrap(),
            )
            .unwrap();
    }
    let world = TeeWorld::new_deterministic(33);
    let mut server2 = mk_server::<KvStore>(mode, &world, 1, Arc::new(mixed), 1);
    server2.boot().unwrap();

    let err = c.get(&mut server2, b"k").unwrap_err();
    assert!(err.is_violation());
}

fn first_op_misdelivered_to_wrong_shard_detected(mode: Mode) {
    // The protocol's security argument needs the verifier to attest
    // exactly the enclave that executes its operations. The host
    // redirects a client's FIRST-ever operation — no history exists on
    // any shard, so the client-context check `V[i] = (tc, hc)` matches
    // the genesis entry everywhere and cannot catch the redirect. The
    // enclave's attested shard identity must: executing a wire it does
    // not own is a violation, not a misplaced write.
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 34);
    let c = &mut clients[0];
    let key = b"first-op-key".to_vec();
    let wire = c
        .invoke_wire(&KvOp::Put(key.clone(), b"v".to_vec()))
        .unwrap();
    if mode.shards() > 1 {
        // Intact wire, wrong shard: the host's router is its own
        // software, so it can deliver anywhere it likes.
        let sibling = (mode.shard_of_key(&key) + 1) % mode.shards();
        server.submit_to_shard(sibling, wire);
    } else {
        // A single-shard deployment has no sibling to redirect to; the
        // closest host move is rewriting the plaintext envelope route
        // on the intact ciphertext — which breaks the AAD binding.
        let mut wire = wire;
        wire[4] ^= 0x01; // a route byte of the plaintext envelope
        server.submit(wire);
    }
    let err = server.process_all().unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
    if mode.shards() > 1 {
        assert!(
            err.to_string().contains("shard"),
            "the violation should name the shard mismatch: {err}"
        );
    }
    // Detected, not misplaced: nothing executed anywhere.
    assert_eq!(server.ops_processed(), 0);
}

fn misdelivery_after_history_still_detected_by_enclave(mode: Mode) {
    // A client with real history on its home shard gets a later wire
    // redirected to a sibling it has NEVER talked to (the sibling's
    // V[i] still holds the genesis entry — but the wire carries the
    // home shard's context, so even pre-identity servers would catch
    // this one; the identity check just fails faster and with sharper
    // evidence). Either way: violation, nothing executed.
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 35);
    let c = &mut clients[0];
    let key = b"seasoned-key".to_vec();
    c.put(&mut server, &key, b"v1").unwrap();
    let ops_before = server.ops_processed();
    let wire = c
        .invoke_wire(&KvOp::Put(key.clone(), b"v2".to_vec()))
        .unwrap();
    if mode.shards() > 1 {
        let sibling = (mode.shard_of_key(&key) + 1) % mode.shards();
        server.submit_to_shard(sibling, wire);
    } else {
        let mut wire = wire;
        wire[7] ^= 0x80;
        server.submit(wire);
    }
    let err = server.process_all().unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
    assert_eq!(server.ops_processed(), ops_before);
}

fn moved_slice_cannot_resurrect_on_old_owner(mode: Mode) {
    // Live slice migration bumps the routing epoch; the old owner's
    // enclave installs the new table before the move completes. A host
    // that keeps delivering a stale client's wires to the OLD owner —
    // pretending the migration never happened, which would fork the
    // slice's history from the migrated state — gets only a typed
    // redirect: the enclave NEVER executes a slice outside its
    // installed table, no matter how the wire reaches it.
    use lcm::core::client::WriteOutcome;
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 36);
    let c = &mut clients[0];
    let key = b"moving-key".to_vec();
    c.put(&mut server, &key, b"v1").unwrap();
    if mode.shards() < 2 {
        // No sibling to migrate to: the surface must refuse cleanly
        // instead of corrupting the single-lane topology.
        assert!(server.migrate_slice(0, 1).is_err());
        return;
    }
    let old_owner = mode.shard_of_key(&key);
    let slice = slice_of(route_hash(&key));
    server
        .migrate_slice(slice, (old_owner + 1) % mode.shards())
        .unwrap();

    // The client has not heard about the move: it stamps the old epoch
    // and routes to the old owner, and the host delivers exactly as
    // routed.
    let op = KvOp::Put(key.clone(), b"v2".to_vec());
    let wire = c.invoke_wire(&op).unwrap();
    server.submit_to_shard(old_owner, wire);
    let replies = server.process_all().unwrap();
    // A `Done` here would be the resurrection: the old owner
    // acknowledging a write on a slice it no longer owns, forking the
    // slice's history from the migrated state.
    let (_, outcome) = c.lcm_mut().handle_reply_on(&replies[0].1).unwrap();
    assert!(
        matches!(outcome, WriteOutcome::Redirected { .. }),
        "got {outcome:?}"
    );

    // The chase converges: the re-minted wire lands exactly once on
    // the new owner.
    server.submit(c.invoke_wire(&op).unwrap());
    let replies = server.process_all().unwrap();
    let done = c.complete(&replies[0].1).unwrap();
    assert_eq!(done.result, lcm::kvs::ops::KvResult::Stored);
    assert_eq!(c.get(&mut server, &key).unwrap().unwrap(), b"v2".to_vec());
}

fn stale_epoch_delivery_to_bystander_detected(mode: Mode) {
    // Variant of the resurrection attack: the host delivers the stale
    // wire to a shard that never owned the moved slice — under either
    // epoch. The bystander adopted the new table during the handshake,
    // so its recomputation rejects the wire just like the old owner's.
    let (_w, _s, mut server, _a, mut clients) = setup_adversarial(mode, 1, 37);
    if mode.shards() < 3 {
        return; // needs old owner, new owner, and a third shard
    }
    let c = &mut clients[0];
    let key = b"bystander-key".to_vec();
    c.put(&mut server, &key, b"v1").unwrap();
    let old_owner = mode.shard_of_key(&key);
    let new_owner = (old_owner + 1) % mode.shards();
    let bystander = (old_owner + 2) % mode.shards();
    server
        .migrate_slice(slice_of(route_hash(&key)), new_owner)
        .unwrap();

    let wire = c
        .invoke_wire(&KvOp::Put(key.clone(), b"v2".to_vec()))
        .unwrap();
    let ops_before = server.ops_processed();
    server.submit_to_shard(bystander, wire);
    let err = server.process_all().unwrap_err();
    assert!(err.is_violation(), "got {err:?}");
    assert_eq!(server.ops_processed(), ops_before, "nothing executed");
}

all_modes!(
    rollback_one_step_detected_by_victim,
    rollback_to_genesis_detected,
    dropped_writes_surface_as_rollback_on_restart,
    fork_detected_when_clients_cross,
    forked_minority_never_becomes_stable,
    forked_views_never_join,
    replayed_invoke_halts_context,
    tampered_invoke_halts_context,
    tampered_reply_halts_client,
    reply_swapped_between_clients_detected,
    reordered_requests_from_one_client_detected,
    wrong_world_enclave_fails_bootstrap,
    halted_context_refuses_everything,
    stale_state_with_fresh_keyblob_detected,
    first_op_misdelivered_to_wrong_shard_detected,
    misdelivery_after_history_still_detected_by_enclave,
    moved_slice_cannot_resurrect_on_old_owner,
    stale_epoch_delivery_to_bystander_detected,
);
