//! Property-based tests over whole protocol executions.
//!
//! Strategy: generate random schedules (which client acts, what it
//! does, where batches cut, when the server crashes and recovers) and
//! assert the protocol invariants on the resulting histories; generate
//! random attack injections and assert they are detected or harmless.

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::core::verify::{check_client_view, check_single_history, check_stable_prefix};
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::{KvOp, KvResult};
use lcm::kvs::store::KvStore;
use lcm::storage::{AdversaryMode, RollbackStorage, Version};
use lcm::tee::world::TeeWorld;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    /// Client `i % n` performs the op.
    Put(u8, Vec<u8>),
    Get(u8),
    Del(u8),
    /// Crash the server and recover.
    CrashRecover,
    /// Process with a different batch boundary (submit several ops
    /// from distinct clients before processing).
    RoundRobinBurst,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(k, v)| Step::Put(k, v)),
        3 => any::<u8>().prop_map(Step::Get),
        1 => any::<u8>().prop_map(Step::Del),
        1 => Just(Step::CrashRecover),
        1 => Just(Step::RoundRobinBurst),
    ]
}

fn build(n_clients: u32, seed: u64, batch: usize) -> (LcmServer<KvStore>, Vec<KvsClient>) {
    let world = TeeWorld::new_deterministic(seed);
    let platform = world.platform_deterministic(1);
    let mut server = LcmServer::<KvStore>::new(
        &platform,
        Arc::new(lcm::storage::MemoryStorage::new()),
        batch,
    );
    server.boot().unwrap();
    let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let clients = ids
        .iter()
        .map(|&id| {
            let mut c = KvsClient::new(id, admin.client_key());
            c.lcm_mut().set_recording(true);
            c
        })
        .collect();
    (server, clients)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Honest runs under arbitrary schedules satisfy every protocol
    /// invariant and mirror a reference store.
    #[test]
    fn honest_runs_are_consistent(
        steps in proptest::collection::vec(arb_step(), 1..60),
        n_clients in 1u32..5,
        batch in 1usize..20,
        seed in 0u64..1000,
    ) {
        let (mut server, mut clients) = build(n_clients, seed, batch);
        let mut reference = std::collections::BTreeMap::<Vec<u8>, Vec<u8>>::new();
        let mut turn = 0usize;

        for step in &steps {
            match step {
                Step::Put(k, v) => {
                    let c = &mut clients[turn % n_clients as usize];
                    turn += 1;
                    let key = vec![*k];
                    c.put(&mut server, &key, v).unwrap();
                    reference.insert(key, v.clone());
                }
                Step::Get(k) => {
                    let c = &mut clients[turn % n_clients as usize];
                    turn += 1;
                    let got = c.get(&mut server, &[*k]).unwrap();
                    prop_assert_eq!(got.as_deref(), reference.get(&vec![*k]).map(|v| v.as_slice()));
                }
                Step::Del(k) => {
                    let c = &mut clients[turn % n_clients as usize];
                    turn += 1;
                    let existed = c.del(&mut server, &[*k]).unwrap();
                    prop_assert_eq!(existed, reference.remove(&vec![*k]).is_some());
                }
                Step::CrashRecover => {
                    server.crash();
                    prop_assert!(!server.boot().unwrap());
                }
                Step::RoundRobinBurst => {
                    // All clients submit one op before any processing.
                    let wires: Vec<_> = clients
                        .iter_mut()
                        .map(|c| c.invoke_wire(&KvOp::Get(b"burst".to_vec())).unwrap())
                        .collect();
                    for w in wires {
                        server.submit(w);
                    }
                    let replies = server.process_all().unwrap();
                    for (id, wire) in replies {
                        let c = clients.iter_mut().find(|c| c.lcm().id() == id).unwrap();
                        let done = c.complete(&wire).unwrap();
                        prop_assert!(matches!(done.result, KvResult::Value(_)));
                    }
                }
            }
        }

        // Invariants over the recorded histories.
        let views: Vec<&[_]> = clients.iter().map(|c| c.lcm().records()).collect();
        check_single_history(&views).map_err(|e| TestCaseError::fail(e.to_string()))?;
        check_stable_prefix(&views).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for view in &views {
            check_client_view(view).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }

    /// A rollback injected at a random point is always detected by the
    /// next operation of any client that had completed an operation
    /// after the rollback point.
    #[test]
    fn random_rollbacks_detected(
        pre_ops in 2usize..12,
        post_ops in 1usize..6,
        rollback_to in 0usize..3,
        seed in 0u64..1000,
    ) {
        let world = TeeWorld::new_deterministic(seed);
        let platform = world.platform_deterministic(1);
        let storage = Arc::new(RollbackStorage::new());
        let mut server = LcmServer::<KvStore>::new(&platform, storage.clone(), 1);
        server.boot().unwrap();
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, seed);
        admin.bootstrap(&mut server).unwrap();
        let mut client = KvsClient::new(ClientId(1), admin.client_key());

        for i in 0..pre_ops {
            client.put(&mut server, b"k", &(i as u64).to_be_bytes()).unwrap();
        }

        // Roll back to some strictly earlier state version.
        let latest = storage.history().latest_version("lcm.state").unwrap().0;
        let target = (rollback_to as u64).min(latest.saturating_sub(1));
        storage.set_mode(AdversaryMode::ServeVersion(Version(target)));
        server.crash();
        server.boot().unwrap();

        // The very next operation must detect the rollback.
        let result = client.put(&mut server, b"k", b"after");
        prop_assert!(result.is_err(), "rollback to v{target} went undetected");
        prop_assert!(result.unwrap_err().is_violation());

        // And the client refuses to continue afterwards.
        for _ in 0..post_ops {
            prop_assert!(client.put(&mut server, b"k", b"x").is_err());
        }
    }

    /// Random single-bit corruption of any message in either direction
    /// is always detected, never silently accepted.
    #[test]
    fn random_message_corruption_detected(
        bit in 0usize..4096,
        corrupt_reply in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let (mut server, mut clients) = build(1, seed, 1);
        let c = &mut clients[0];
        // One honest op to move past genesis.
        c.put(&mut server, b"k", b"v").unwrap();

        let mut wire = c.invoke_wire(&KvOp::Get(b"k".to_vec())).unwrap();
        if corrupt_reply {
            server.submit(wire);
            let mut replies = server.process_all().unwrap();
            let reply = &mut replies[0].1;
            let b = bit % (reply.len() * 8);
            reply[b / 8] ^= 1 << (b % 8);
            let err = c.complete(reply).unwrap_err();
            prop_assert!(err.is_violation());
        } else {
            let b = bit % (wire.len() * 8);
            wire[b / 8] ^= 1 << (b % 8);
            server.submit(wire);
            let err = server.process_all().unwrap_err();
            prop_assert!(err.is_violation());
        }
    }

    /// Crash/retry at arbitrary points never duplicates or loses an
    /// operation: the store always reflects each op exactly once.
    #[test]
    fn crash_retry_is_exactly_once(
        crash_after_store in any::<bool>(),
        ops in 1usize..8,
        seed in 0u64..1000,
    ) {
        let (mut server, mut clients) = build(1, seed, 1);
        let c = &mut clients[0];

        for i in 0..ops {
            let value = (i as u64).to_be_bytes().to_vec();
            let wire = c
                .invoke_wire(&KvOp::Put(format!("k{i}").into_bytes(), value.clone()))
                .unwrap();
            if crash_after_store {
                // Processed, but the reply is lost in the crash.
                server.submit(wire);
                let _lost = server.process_all().unwrap();
            } else {
                // Never processed.
            }
            server.crash();
            server.boot().unwrap();
            // Retry until completion.
            server.submit(c.lcm_mut().retry().unwrap());
            let replies = server.process_all().unwrap();
            let done = c.complete(&replies[0].1).unwrap();
            prop_assert_eq!(done.result, KvResult::Stored);
        }

        // Every key present exactly once with its final value; the
        // global sequence counted each op exactly once.
        for i in 0..ops {
            let got = c.get(&mut server, format!("k{i}").as_bytes()).unwrap();
            prop_assert_eq!(got.unwrap(), (i as u64).to_be_bytes().to_vec());
        }
        prop_assert_eq!(c.lcm().last_seq().0, (2 * ops) as u64);
    }
}
