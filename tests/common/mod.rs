//! Shared scaffolding for running integration scenarios against both
//! server modes: the synchronous `LcmServer` loop and the
//! asynchronous-write `PipelinedServer` pipeline.

use std::sync::Arc;

use lcm::core::functionality::Functionality;
use lcm::core::pipeline::PipelinedServer;
use lcm::core::server::{BatchServer, LcmServer};
use lcm::storage::StableStorage;
use lcm::tee::platform::TeePlatform;

/// Which execution mode a scenario runs the server in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// `LcmServer`: submit → step → persist, strictly in order.
    Sync,
    /// `PipelinedServer`: persistence overlaps execution on a
    /// background writer thread.
    Pipelined,
}

/// Builds a server of the requested mode behind the common
/// [`BatchServer`] interface.
pub fn mk_server<F: Functionality + 'static>(
    mode: Mode,
    platform: &TeePlatform,
    storage: Arc<dyn StableStorage>,
    batch: usize,
) -> Box<dyn BatchServer> {
    let server = LcmServer::<F>::new(platform, storage, batch);
    match mode {
        Mode::Sync => Box::new(server),
        Mode::Pipelined => Box::new(PipelinedServer::new(server)),
    }
}

/// Instantiates each `fn scenario(Mode)` in the invoking test crate as
/// a `#[test]` per server mode.
macro_rules! both_modes {
    ($($name:ident),* $(,)?) => {
        mod sync_mode {
            $(#[test] fn $name() { super::$name(crate::common::Mode::Sync) })*
        }
        mod pipelined_mode {
            $(#[test] fn $name() { super::$name(crate::common::Mode::Pipelined) })*
        }
    };
}
pub(crate) use both_modes;
