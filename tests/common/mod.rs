//! Shared scaffolding for running integration scenarios against every
//! server mode: the synchronous `LcmServer` loop, the
//! asynchronous-write `PipelinedServer` pipeline, the sharded
//! multi-enclave `ShardedServer` at 1 and 4 shards (each shard sync or
//! pipelined), and the sharded deployment behind the concurrent
//! transport `Frontend` (multi-threaded lane driving; `OnDemand` so
//! batch arithmetic and crash scheduling stay deterministic).

// Compiled once per test binary; not every binary uses every helper.
#![allow(dead_code, unused_macros, unused_imports)]

use std::sync::Arc;

use lcm::core::functionality::Functionality;
use lcm::core::pipeline::PipelinedServer;
use lcm::core::server::{BatchServer, LcmServer};
use lcm::core::shard;
use lcm::core::transport::{DriveMode, Frontend};
use lcm::core::types::ClientId;
use lcm::crypto::keys::SecretKey;
use lcm::kvs::client::KvsClient;
use lcm::storage::{DeltaLogConfig, DeltaLogStorage, NamespacedStorage, StableStorage};
use lcm::tee::world::TeeWorld;

/// Driver threads the concurrent-frontend mode attaches.
pub const FRONTEND_THREADS: usize = 3;

/// Which execution mode a scenario runs the server in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// `LcmServer`: submit → step → persist, strictly in order.
    Sync,
    /// `PipelinedServer`: persistence overlaps execution on a
    /// background writer thread.
    Pipelined,
    /// `ShardedServer` over `shards` lanes; each lane is a plain
    /// `LcmServer` (`pipelined: false`) or a `PipelinedServer`.
    Sharded {
        /// Number of shards.
        shards: u32,
        /// Whether each shard persists on a background writer.
        pipelined: bool,
    },
    /// The sharded deployment behind the concurrent transport
    /// `Frontend`: every submit goes through the thread-safe ingress
    /// plane and every pump is executed by [`FRONTEND_THREADS`] driver
    /// threads concurrently (on-demand windows keep scenarios
    /// deterministic).
    Frontend {
        /// Number of shards behind the front-end.
        shards: u32,
        /// Whether each shard persists on a background writer.
        pipelined: bool,
    },
    /// Every shard runs as a `ReplicaGroup` of `replicas` members
    /// (majority quorum): writes release only once a quorum holds the
    /// sealed state, and a crashed leader fails over to the most
    /// advanced follower. Scenarios written against the other modes
    /// run unchanged — the group hides behind the same `BatchServer`
    /// surface.
    Replicated {
        /// Number of shard groups.
        shards: u32,
        /// Members per group (`2f + 1` tolerates `f` crashes).
        replicas: u32,
        /// Whether each member persists on a background writer.
        pipelined: bool,
    },
}

impl Mode {
    /// Shard count of the deployment (1 for the unsharded modes).
    pub fn shards(self) -> u32 {
        match self {
            Mode::Sync | Mode::Pipelined => 1,
            Mode::Sharded { shards, .. }
            | Mode::Frontend { shards, .. }
            | Mode::Replicated { shards, .. } => shards,
        }
    }

    /// Replicas per shard group (1 for unreplicated modes).
    pub fn replicas(self) -> u32 {
        match self {
            Mode::Replicated { replicas, .. } => replicas,
            _ => 1,
        }
    }

    /// Whether the mode routes through the sharded fan-out layer.
    pub fn is_sharded(self) -> bool {
        matches!(
            self,
            Mode::Sharded { .. } | Mode::Frontend { .. } | Mode::Replicated { .. }
        )
    }

    /// The storage slot a given shard persists its sealed state to
    /// (the group **leader's** region in replicated mode — where the
    /// authoritative blob a host could attack lives).
    pub fn state_slot(self, shard: u32) -> String {
        match self {
            Mode::Sync | Mode::Pipelined => "lcm.state".into(),
            Mode::Sharded { .. } | Mode::Frontend { .. } => {
                format!("{}lcm.state", NamespacedStorage::shard_prefix(shard))
            }
            Mode::Replicated { .. } => {
                format!("{}rep0.lcm.state", NamespacedStorage::shard_prefix(shard))
            }
        }
    }

    /// The storage slot a given shard persists its sealed key blob to.
    pub fn key_slot(self, shard: u32) -> String {
        match self {
            Mode::Sync | Mode::Pipelined => "lcm.keyblob".into(),
            Mode::Sharded { .. } | Mode::Frontend { .. } => {
                format!("{}lcm.keyblob", NamespacedStorage::shard_prefix(shard))
            }
            Mode::Replicated { .. } => {
                format!("{}rep0.lcm.keyblob", NamespacedStorage::shard_prefix(shard))
            }
        }
    }

    /// The storage slot one group member persists its sealed state to
    /// (`replica` must be 0 outside replicated mode).
    pub fn member_state_slot(self, shard: u32, replica: u32) -> String {
        match self {
            Mode::Replicated { .. } => format!(
                "{}rep{replica}.lcm.state",
                NamespacedStorage::shard_prefix(shard)
            ),
            _ => {
                assert_eq!(replica, 0, "unreplicated modes have a single member");
                self.state_slot(shard)
            }
        }
    }

    /// The storage slot one group member persists its sealed key blob
    /// to (`replica` must be 0 outside replicated mode).
    pub fn member_key_slot(self, shard: u32, replica: u32) -> String {
        match self {
            Mode::Replicated { .. } => format!(
                "{}rep{replica}.lcm.keyblob",
                NamespacedStorage::shard_prefix(shard)
            ),
            _ => {
                assert_eq!(replica, 0, "unreplicated modes have a single member");
                self.key_slot(shard)
            }
        }
    }

    /// The shard a KVS operation on `key` routes to in this mode.
    pub fn shard_of_key(self, key: &[u8]) -> u32 {
        shard::shard_index(shard::route_hash(key), self.shards())
    }
}

/// Interposes the sealed delta-log engine between the servers and the
/// scenario's root storage when `LCM_STRESS_DELTALOG=1` — the
/// storage-torture CI tier runs the whole crash/churn suite through
/// the engine this way. A tiny segment budget forces seals and
/// compactions to fire constantly so short schedules still exercise
/// the full segment lifecycle.
pub fn maybe_deltalog(storage: Arc<dyn StableStorage>) -> Arc<dyn StableStorage> {
    if std::env::var("LCM_STRESS_DELTALOG").is_ok_and(|v| v == "1") {
        let engine = DeltaLogStorage::with_config(
            storage,
            DeltaLogConfig {
                segment_bytes: 2048,
            },
        )
        .expect("delta-log engine opens on the scenario's root storage");
        Arc::new(engine)
    } else {
        storage
    }
}

/// Builds a server of the requested mode behind the common
/// [`BatchServer`] interface. Sharded modes place shard `i` on
/// platform `platform_base + i` of `world` and give it the
/// `shard{i}.`-prefixed region of `storage`.
pub fn mk_server<F: Functionality + 'static>(
    mode: Mode,
    world: &TeeWorld,
    platform_base: u64,
    storage: Arc<dyn StableStorage>,
    batch: usize,
) -> Box<dyn BatchServer> {
    let storage = maybe_deltalog(storage);
    match mode {
        Mode::Sync => {
            let platform = world.platform_deterministic(platform_base);
            Box::new(LcmServer::<F>::new(&platform, storage, batch))
        }
        Mode::Pipelined => {
            let platform = world.platform_deterministic(platform_base);
            Box::new(PipelinedServer::new(LcmServer::<F>::new(
                &platform, storage, batch,
            )))
        }
        Mode::Sharded { shards, pipelined } => Box::new(shard::build_sharded::<F>(
            world,
            platform_base,
            storage,
            batch,
            shards,
            pipelined,
        )),
        Mode::Frontend { shards, pipelined } => {
            let sharded =
                shard::build_sharded::<F>(world, platform_base, storage, batch, shards, pipelined);
            Box::new(
                Frontend::new(sharded, FRONTEND_THREADS, DriveMode::OnDemand)
                    .expect("sharded servers always expose a transport plane"),
            )
        }
        Mode::Replicated {
            shards,
            replicas,
            pipelined,
        } => Box::new(shard::build_replicated::<F>(
            world,
            platform_base,
            storage,
            batch,
            shard::ReplicationSpec {
                shards,
                replicas,
                quorum: lcm::core::stability::Quorum::Majority,
            },
            pipelined,
        )),
    }
}

/// Builds a KVS client wired for the mode's shard count.
pub fn mk_client(mode: Mode, id: ClientId, k_c: &SecretKey) -> KvsClient {
    KvsClient::new_sharded(id, k_c, mode.shards())
}

/// How many seal-and-store cycles one round of `keys` (one op per key,
/// all queued before processing) costs at batch limit `batch`: the sum
/// over shards of `ceil(ops_on_shard / batch)`.
pub fn expected_batches(mode: Mode, keys: &[Vec<u8>], batch: usize) -> u64 {
    let mut per_shard = vec![0u64; mode.shards() as usize];
    for key in keys {
        per_shard[mode.shard_of_key(key) as usize] += 1;
    }
    per_shard
        .iter()
        .filter(|&&n| n > 0)
        .map(|&n| n.div_ceil(batch as u64))
        .sum()
}

/// Instantiates each `fn scenario(Mode)` in the invoking test crate as
/// a `#[test]` per server mode: both unsharded modes and the sharded
/// fan-out at 1 and 4 shards, sync and pipelined.
macro_rules! all_modes {
    ($($name:ident),* $(,)?) => {
        mod sync_mode {
            $(#[test] fn $name() { super::$name(crate::common::Mode::Sync) })*
        }
        mod pipelined_mode {
            $(#[test] fn $name() { super::$name(crate::common::Mode::Pipelined) })*
        }
        mod sharded_sync_1 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Sharded { shards: 1, pipelined: false }) })*
        }
        mod sharded_sync_4 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Sharded { shards: 4, pipelined: false }) })*
        }
        mod sharded_pipelined_1 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Sharded { shards: 1, pipelined: true }) })*
        }
        mod sharded_pipelined_4 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Sharded { shards: 4, pipelined: true }) })*
        }
        mod frontend_sync_4 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Frontend { shards: 4, pipelined: false }) })*
        }
        mod frontend_pipelined_4 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Frontend { shards: 4, pipelined: true }) })*
        }
        mod replicated_sync_2x3 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Replicated { shards: 2, replicas: 3, pipelined: false }) })*
        }
        mod replicated_pipelined_2x3 {
            $(#[test] fn $name() { super::$name(
                crate::common::Mode::Replicated { shards: 2, replicas: 3, pipelined: true }) })*
        }
    };
}
pub(crate) use all_modes;
