//! Multi-tenant admission-control stress for the front door.
//!
//! Two properties, across both server modes (sync / pipelined) and
//! both front-end drive modes (continuous / on-demand):
//!
//! 1. **Bounded cross-tenant interference** — a greedy tenant
//!    flooding the deployment cannot degrade a metered tenant's p99
//!    latency beyond a bounded factor of its contention-free p99: the
//!    greedy tenant's token bucket and weighted-fair-queueing credit
//!    cap hold it at the door instead of letting it fill the shard
//!    queues.
//! 2. **Replay, not re-execution** — a duplicate submission (retry
//!    after a lost reply) is answered from the host reply book: the
//!    per-shard op counters do not move, and the replayed reply still
//!    verifies at the client (the wire is byte-identical, so the
//!    enclave's hash-chain echo checks out).
//!
//! The CI `admission-stress` job repeats this suite with distinct
//! `LCM_STRESS_SEED`s; the seed is logged so a failing schedule can
//! be replayed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lcm::core::admission::{AdmissionConfig, AdmitOutcome, TenantConfig, TenantId};
use lcm::core::functionality::Counter;
use lcm::core::shard;
use lcm::prelude::*;
use lcm::storage::{DelayedStorage, MemoryStorage};

const SHARDS: u32 = 2;
/// The metered (victim) tenant's single client.
const VICTIM: ClientId = ClientId(1);
/// The greedy tenant's clients, each flooding from its own thread.
const GREEDY_CLIENTS: u32 = 4;
/// Paced victim operations per measurement run.
const VICTIM_OPS: u64 = 32;
/// Interference bound: with admission on, contention may not push the
/// victim's p99 past `max(3 × alone_p99, FLOOR)`. The floor absorbs
/// the case where the contention-free p99 is so small (microseconds)
/// that 3× of it is below scheduling noise.
const BOUND_FACTOR: u64 = 3;
const FLOOR_US: u64 = 10_000;

fn stress_seed() -> u64 {
    let seed = std::env::var("LCM_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    eprintln!("admission_stress config: seed={seed} shards={SHARDS} greedy={GREEDY_CLIENTS}");
    seed
}

/// Victim tenant generously provisioned; greedy tenant throttled to a
/// low rate and a small fair-queueing share. The weights matter as
/// much as the rate: with a 15:1 split of a 64-slot budget the greedy
/// tenant holds at most 4 wires in flight, so a victim op never waits
/// behind more than a handful of admitted greedy ops at its shard —
/// that queueing (not the token bucket) is what would otherwise drag
/// the victim's p99 past the bound on a fast machine.
fn two_tenant_policy() -> AdmissionConfig {
    let greedy_ids: Vec<ClientId> = (0..GREEDY_CLIENTS).map(|i| ClientId(100 + i)).collect();
    let mut config = AdmissionConfig::new(vec![
        TenantConfig::unlimited(TenantId(1), vec![VICTIM], 15),
        TenantConfig::metered(TenantId(2), greedy_ids, 200.0, 4, 1),
    ]);
    config.max_in_flight = 64;
    config
}

fn build_contended(pipelined: bool, continuous: bool, seed: u64) -> Deployment {
    let storage = Arc::new(DelayedStorage::new(
        MemoryStorage::new(),
        Duration::from_micros(500),
    ));
    let clients: Vec<ClientId> = std::iter::once(VICTIM)
        .chain((0..GREEDY_CLIENTS).map(|i| ClientId(100 + i)))
        .collect();
    let mut builder = DeploymentBuilder::<Counter>::new()
        .shards(SHARDS)
        .mode(if pipelined {
            Mode::Pipelined
        } else {
            Mode::Sync
        })
        .clients(clients)
        .admission(two_tenant_policy())
        .storage(storage)
        .seed(seed);
    if continuous {
        builder = builder.frontend(2);
    }
    builder.build().unwrap()
}

/// Runs the victim's paced closed loop (and, optionally, the greedy
/// flood) against a fresh deployment; returns the victim tenant's
/// overall p99 (µs) and the greedy tenant's rejected count.
fn victim_p99_under(pipelined: bool, continuous: bool, with_greedy: bool, seed: u64) -> (u64, u64) {
    let mut dep = build_contended(pipelined, continuous, seed);
    let stop = Arc::new(AtomicBool::new(false));

    let greedy_handles: Vec<_> = if with_greedy {
        (0..GREEDY_CLIENTS)
            .map(|i| {
                let id = ClientId(100 + i);
                let port = dep.port(id);
                let mut client = dep.client(id);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // Closed-loop flood: each op as fast as the door
                    // lets it through. `send` absorbs the RetryAfter
                    // bounces (each still counts in the stats).
                    let name =
                        shard::nth_key_routing_to(id.0 % SHARDS, SHARDS, &format!("g{}-", id.0), 0);
                    while !stop.load(Ordering::SeqCst) {
                        let op = Counter::inc_op(&name, 1);
                        port.send(client.invoke_for::<Counter>(&op).unwrap());
                        let mut got = false;
                        while !got && !stop.load(Ordering::SeqCst) {
                            if let Some(reply) = port.recv_timeout(Duration::from_millis(50)) {
                                client.handle_reply(&reply).unwrap();
                                got = true;
                            }
                        }
                        if !got {
                            break; // stopping with an op in flight is fine
                        }
                    }
                    assert!(!client.is_halted(), "admission must never halt a client");
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    let victim_port = dep.port(VICTIM);
    let mut victim = dep.client(VICTIM);
    let victim_thread = std::thread::spawn(move || {
        let names: Vec<Vec<u8>> = (0..SHARDS)
            .map(|s| shard::nth_key_routing_to(s, SHARDS, "victim-", 0))
            .collect();
        for round in 0..VICTIM_OPS {
            let name = &names[(round % u64::from(SHARDS)) as usize];
            let op = Counter::inc_op(name, 1);
            victim_port.send(victim.invoke_for::<Counter>(&op).unwrap());
            let reply = victim_port
                .recv_timeout(Duration::from_secs(30))
                .expect("victim reply within 30s");
            victim.handle_reply(&reply).unwrap();
            // Paced, not saturating: the victim models a well-behaved
            // tenant whose latency we protect.
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!victim.is_halted());
    });

    if continuous {
        victim_thread.join().unwrap();
    } else {
        // On-demand front-end: this thread is the pump.
        while !victim_thread.is_finished() {
            dep.process_all().unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        victim_thread.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    for h in greedy_handles {
        // Pump any straggling greedy in-flight op so its recv loop can
        // observe the stop flag (on-demand mode only needs one sweep).
        if !continuous {
            dep.process_all().unwrap();
        }
        h.join().unwrap();
    }

    let snapshot = dep.health_snapshot().expect("sharded plane has admission");
    assert!(snapshot.admission_enabled);
    assert_eq!(snapshot.mode, if pipelined { "pipelined" } else { "sync" });
    let victim_row = snapshot.tenant(TenantId(1)).expect("victim tenant row");
    assert_eq!(victim_row.admitted, VICTIM_OPS, "victim is never rejected");
    assert!(victim_row.overall.count >= VICTIM_OPS);
    let greedy_rejected = snapshot.tenant(TenantId(2)).map_or(0, |t| t.rejected);
    (victim_row.overall.p99_us, greedy_rejected)
}

fn bounded_interference(pipelined: bool, continuous: bool) {
    let seed = stress_seed();
    let (alone_p99, _) = victim_p99_under(pipelined, continuous, false, seed);
    let (contended_p99, greedy_rejected) = victim_p99_under(pipelined, continuous, true, seed);
    eprintln!(
        "pipelined={pipelined} continuous={continuous}: victim p99 alone={alone_p99}us \
         contended={contended_p99}us greedy_rejected={greedy_rejected}"
    );
    let bound = (BOUND_FACTOR * alone_p99).max(FLOOR_US);
    assert!(
        contended_p99 <= bound,
        "greedy tenant degraded victim p99 beyond the bound: \
         alone={alone_p99}us contended={contended_p99}us bound={bound}us"
    );
    assert!(
        greedy_rejected > 0,
        "the flood never hit the rate limiter — the scenario exerted no pressure"
    );
}

#[test]
fn bounded_interference_sync_continuous() {
    bounded_interference(false, true);
}

#[test]
fn bounded_interference_pipelined_continuous() {
    bounded_interference(true, true);
}

#[test]
fn bounded_interference_sync_on_demand() {
    bounded_interference(false, false);
}

#[test]
fn bounded_interference_pipelined_on_demand() {
    bounded_interference(true, false);
}

/// Property 2: duplicate submissions replay from the reply book.
fn duplicate_replays_without_reexecution(pipelined: bool) {
    let seed = stress_seed();
    // On-demand front-end (no free-running drivers): deterministic
    // pumping makes "the op counters did not move" exact.
    let mut dep = DeploymentBuilder::<Counter>::new()
        .shards(SHARDS)
        .mode(if pipelined {
            Mode::Pipelined
        } else {
            Mode::Sync
        })
        .clients(vec![VICTIM])
        .admission(AdmissionConfig::new(vec![TenantConfig::unlimited(
            TenantId(1),
            vec![VICTIM],
            1,
        )]))
        .seed(seed)
        .build()
        .unwrap();

    let mut client = dep.client(VICTIM);
    let port = dep.port(VICTIM);
    let name = b"dup-key".to_vec();

    // One committed op through the normal path.
    port.send(
        client
            .invoke_for::<Counter>(&Counter::inc_op(&name, 1))
            .unwrap(),
    );
    dep.process_all().unwrap();
    let first = port.recv_timeout(Duration::from_secs(5)).unwrap();
    client.handle_reply(&first).unwrap();

    let ops_before: u64 = dep.frontend().server().stats_rollup().total_ops;
    assert_eq!(ops_before, 1);

    // Second op: the reply is LOST on the way back (we drain and drop
    // it), so the client retries the identical envelope.
    port.send(
        client
            .invoke_for::<Counter>(&Counter::inc_op(&name, 1))
            .unwrap(),
    );
    dep.process_all().unwrap();
    let lost = port.recv_timeout(Duration::from_secs(5)).unwrap();
    drop(lost); // simulated reply loss
    assert_eq!(dep.frontend().server().stats_rollup().total_ops, 2);

    // The retry must be recognized at the door and answered from the
    // reply book — no ticket, no enclave execution.
    let retry_wire = client.retry().unwrap();
    let outcome = port.try_send(retry_wire).unwrap();
    assert_eq!(outcome, AdmitOutcome::ReplayedReply);
    dep.process_all().unwrap();
    let replayed = port.recv_timeout(Duration::from_secs(5)).unwrap();
    let done = client.handle_reply(&replayed).unwrap();
    assert_eq!(Counter::decode_result(&done.result).unwrap(), 2);
    assert!(!client.is_halted(), "replayed reply must verify");

    // Re-execution would have moved the op counters.
    assert_eq!(
        dep.frontend().server().stats_rollup().total_ops,
        2,
        "duplicate was re-executed instead of replayed"
    );
    let snapshot = dep.health_snapshot().unwrap();
    let row = snapshot.tenant(TenantId(1)).unwrap();
    assert_eq!(row.replayed, 1);
    assert_eq!(dep.stats().replayed(), 1);
}

#[test]
fn duplicate_replays_without_reexecution_sync() {
    duplicate_replays_without_reexecution(false);
}

#[test]
fn duplicate_replays_without_reexecution_pipelined() {
    duplicate_replays_without_reexecution(true);
}

/// A duplicate that races its original (still in flight) is coalesced,
/// not double-executed.
#[test]
fn in_flight_duplicate_is_coalesced() {
    let seed = stress_seed();
    let mut dep = DeploymentBuilder::<Counter>::new()
        .shards(SHARDS)
        .clients(vec![VICTIM])
        .admission(AdmissionConfig::new(vec![TenantConfig::unlimited(
            TenantId(1),
            vec![VICTIM],
            1,
        )]))
        .seed(seed)
        .build()
        .unwrap();
    let mut client = dep.client(VICTIM);
    let port = dep.port(VICTIM);

    let op = Counter::inc_op(b"race", 1);
    let wire = client.invoke_for::<Counter>(&op).unwrap();
    assert_eq!(port.try_send(wire).unwrap(), AdmitOutcome::Enqueued);
    // Same envelope again before the deployment ever executes it.
    let dup = client.retry().unwrap();
    assert_eq!(port.try_send(dup).unwrap(), AdmitOutcome::DuplicateInFlight);

    dep.process_all().unwrap();
    let reply = port.recv_timeout(Duration::from_secs(5)).unwrap();
    client.handle_reply(&reply).unwrap();
    assert_eq!(dep.frontend().server().stats_rollup().total_ops, 1);
    assert!(port.try_recv().is_none(), "exactly one reply for the pair");
    let row = dep.health_snapshot().unwrap();
    assert_eq!(row.tenant(TenantId(1)).unwrap().deduped, 1);
}
