//! Smoke tests over the `examples/` binaries: each must run to
//! completion, and the attack demonstrations must actually report
//! detection (their `main` also returns an error — failing the process
//! — if an attack goes undetected, so exit status alone is meaningful).
//!
//! `cargo test` builds examples for the package under test before any
//! test runs, so the binaries are located relative to the test
//! executable (`target/<profile>/examples/`). `ycsb_run` is excluded:
//! it is a long-running measurement harness, exercised by the bench
//! tier instead.

use std::path::PathBuf;
use std::process::{Command, Output};

fn example_path(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop(); // <test-hash>
    if dir.ends_with("deps") {
        dir.pop(); // deps -> profile dir
    }
    let path = dir.join("examples").join(name);
    assert!(
        path.exists(),
        "example binary {path:?} not found — examples are built by `cargo test`; \
         run from the workspace root"
    );
    path
}

fn run_example(name: &str) -> Output {
    let output = Command::new(example_path(name))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    output
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn quickstart_runs_to_completion() {
    let out = run_example("quickstart");
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("quickstart complete"),
        "quickstart did not reach its completion marker:\n{stdout}"
    );
    assert!(
        stdout.contains("crash recovery"),
        "quickstart did not exercise crash recovery:\n{stdout}"
    );
}

#[test]
fn rollback_attack_is_detected() {
    let out = run_example("rollback_attack");
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("DETECTED the rollback"),
        "rollback attack ran but did not report detection:\n{stdout}"
    );
    // Act 1 must also show the baseline *failing* to detect, otherwise
    // the demonstration is vacuous.
    assert!(
        stdout.contains("rollback vs the SGX baseline"),
        "rollback example lost its baseline act:\n{stdout}"
    );
}

#[test]
fn forking_attack_is_detected() {
    let out = run_example("forking_attack");
    let stdout = stdout_of(&out);
    let detections = stdout.matches("DETECTED").count();
    assert!(
        detections >= 2,
        "forking attack must report detection both on crossing and \
         out-of-band comparison; saw {detections} in:\n{stdout}"
    );
}

#[test]
fn membership_flows_complete() {
    let out = run_example("membership");
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("membership flows complete"),
        "membership example did not complete:\n{stdout}"
    );
    assert!(
        stdout.contains("rejected"),
        "membership example must show the evicted client being rejected:\n{stdout}"
    );
}

#[test]
fn migration_completes() {
    let out = run_example("migration");
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("migration complete"),
        "migration example did not complete:\n{stdout}"
    );
    assert!(
        stdout.contains("refuses service"),
        "migration example must show the origin refusing service:\n{stdout}"
    );
}
