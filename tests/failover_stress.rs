//! Failover stress for replicated shard groups: client threads hammer
//! a deployment of 2f+1 replica groups through the concurrent
//! front-end while a churn loop kills, promotes, and reboots one
//! member per group — leaders included.
//!
//! Three properties under load:
//!
//! 1. **Zero lost acknowledged writes** — every completed increment of
//!    a private counter reads exactly its round number, through any
//!    number of kills, failovers, and reboots. A quorum-acknowledged
//!    write surviving on f+1 members is what makes this hold when the
//!    leader itself is the victim.
//! 2. **No false violations** — member churn is an honest fault, so no
//!    client may ever halt, and any transport-level error surfaced by
//!    the front-end must be a non-violation (enclave unavailable), not
//!    a fork/rollback verdict.
//! 3. **Convergence via timeout-retry** — a write whose ticket died
//!    with a killed leader produces no reply; the client's §4.6.1
//!    timeout-retry (cached-reply exactness included) is the only
//!    recovery mechanism in play, and it must converge.
//!
//! Both lanes run: sync member servers and pipelined ones. The CI
//! `failover-stress` job repeats this suite with distinct
//! `LCM_STRESS_SEED`s; the seed is logged so a failing schedule can be
//! replayed.

use std::sync::Arc;
use std::time::Duration;

use lcm::core::admin::AdminHandle;
use lcm::core::client::LcmClient;
use lcm::core::functionality::Counter;
use lcm::core::server::BatchServer;
use lcm::core::shard::{self, build_replicated, ShardedServer};
use lcm::core::stability::Quorum;
use lcm::core::transport::{DriveMode, Frontend, FrontendPort};
use lcm::core::types::ClientId;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

const SHARDS: u32 = 2;
const REPLICAS: u32 = 3; // 2f+1 with f = 1: one kill per group is always survivable
const CLIENT_THREADS: u32 = 6;
const DRIVER_THREADS: usize = 4;
const CHURN_CYCLES: usize = 4;
/// Retry timeout: long enough that an idle-system reply (microseconds)
/// never races it, short enough to converge through a failover quickly.
const RETRY_AFTER: Duration = Duration::from_millis(500);

fn stress_seed() -> u64 {
    let seed = std::env::var("LCM_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1u64);
    eprintln!(
        "failover_stress config: seed={seed} shards={SHARDS} replicas={REPLICAS} \
         client_threads={CLIENT_THREADS} driver_threads={DRIVER_THREADS}"
    );
    seed
}

type Fleet = (
    Frontend<ShardedServer<Box<dyn BatchServer>>>,
    Vec<LcmClient>,
);

fn build_fleet(pipelined: bool, seed: u64) -> Fleet {
    let world = TeeWorld::new_deterministic(32_000 + seed);
    let server = build_replicated::<Counter>(
        &world,
        1,
        Arc::new(MemoryStorage::new()),
        16,
        shard::ReplicationSpec {
            shards: SHARDS,
            replicas: REPLICAS,
            quorum: Quorum::Majority,
        },
        pipelined,
    );
    let mut fe = Frontend::new(server, DRIVER_THREADS, DriveMode::Continuous).unwrap();
    assert!(fe.boot().unwrap());
    let ids: Vec<ClientId> = (1..=CLIENT_THREADS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut fe).unwrap();
    let clients = ids
        .iter()
        .map(|&id| LcmClient::new_sharded(id, admin.client_key(), SHARDS))
        .collect();
    (fe, clients)
}

/// One counter name per shard group, private to `client`.
fn names_covering_all_shards(client: ClientId) -> Vec<Vec<u8>> {
    (0..SHARDS)
        .map(|shard| shard::nth_key_routing_to(shard, SHARDS, &format!("c{}-", client.0), 0))
        .collect()
}

/// Kill → (implicit) promote → reboot churn under live load. Even
/// cycles kill each group's **current leader** (forcing a failover on
/// the next drive); odd cycles rotate through the followers. At most
/// one member per group is ever down, so the majority quorum always
/// holds every acknowledged write.
fn member_churn_under_load(pipelined: bool) {
    const INCS_PER_NAME: u64 = 6;
    let seed = stress_seed();
    let (mut fe, clients) = build_fleet(pipelined, seed);
    let handles: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let port: FrontendPort = fe.connect(client.id());
            std::thread::spawn(move || {
                let names = names_covering_all_shards(client.id());
                for round in 1..=INCS_PER_NAME {
                    for name in &names {
                        let op = Counter::inc_op(name, 1);
                        port.send(client.invoke_for::<Counter>(&op).unwrap());
                        let mut attempts = 0u32;
                        let value = loop {
                            match port.recv_timeout(RETRY_AFTER) {
                                Some(reply) => {
                                    let done = client.handle_reply(&reply).unwrap();
                                    break Counter::decode_result(&done.result).unwrap();
                                }
                                None => {
                                    attempts += 1;
                                    assert!(
                                        attempts < 120,
                                        "op starved: client {:?} name {:?} round {round}",
                                        client.id(),
                                        String::from_utf8_lossy(name)
                                    );
                                    port.send(client.retry().unwrap());
                                }
                            }
                        };
                        // Exactly-once through any number of failovers:
                        // the i-th completed increment reads i.
                        assert_eq!(
                            value,
                            round,
                            "lost or doubled acknowledged write: client {:?} name {:?}",
                            client.id(),
                            String::from_utf8_lossy(name)
                        );
                        while port.try_recv().is_some() {}
                    }
                }
                assert!(
                    !client.is_halted(),
                    "member churn must never surface as a violation"
                );
                u64::from(SHARDS) * INCS_PER_NAME
            })
        })
        .collect();

    // The churn loop: one victim per group per cycle, kill then reboot.
    // A rebooted member must resume from its sealed state (never
    // fresh), and the reboot path catches it up to the leader so the
    // group re-arms to full 2f+1 tolerance before the next cycle.
    for cycle in 0..CHURN_CYCLES {
        std::thread::sleep(Duration::from_millis(120));
        for group in 0..SHARDS {
            let victim = if cycle % 2 == 0 {
                fe.server_mut().group_leader(group)
            } else {
                1 + (cycle as u32 % (REPLICAS - 1))
            };
            fe.server_mut().kill_member(group, victim, false).unwrap();
            std::thread::sleep(Duration::from_millis(60));
            assert!(
                !fe.server_mut().reboot_member(group, victim).unwrap(),
                "rebooted member resumes from sealed state"
            );
        }
    }

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, u64::from(CLIENT_THREADS * SHARDS) * INCS_PER_NAME);
    // Wires that died with a killed leader surface as non-violation
    // errors (enclave unavailable) — never as protocol violations.
    if let Err(e) = fe.process_all() {
        assert!(!e.is_violation(), "churn noise misclassified: {e:?}");
    }
    assert_eq!(fe.stats().dropped_replies(), 0);
    assert_eq!(
        fe.in_flight(),
        0,
        "leader-death write-offs settled every ticket"
    );
}

#[test]
fn member_churn_under_load_sync_lanes() {
    member_churn_under_load(false);
}

#[test]
fn member_churn_under_load_pipelined_lanes() {
    member_churn_under_load(true);
}
