//! # LCM — Lightweight Collective Memory
//!
//! Facade crate for the reproduction of *"Rollback and Forking Detection
//! for Trusted Execution Environments using Lightweight Collective
//! Memory"* (Brandenburger, Cachin, Lorenz, Kapitza — DSN 2017).
//!
//! This crate re-exports the workspace's public API under one roof; see
//! the individual crates for details:
//!
//! * [`crypto`] — SHA-256 / HMAC / HKDF / ChaCha20 / AEAD primitives.
//! * [`tee`] — SGX-like trusted-execution-environment simulator.
//! * [`storage`] — stable storage with adversarial (rollback) wrappers.
//! * [`net`] — message transport with adversarial routing.
//! * [`runtime`] — hand-rolled bounded queues, worker pools, and
//!   pipeline stage workers (the concurrency substrate of the
//!   pipelined server).
//! * [`core`] — the LCM protocol itself (client + trusted context).
//! * [`kvs`] — the key-value store application and baseline servers.
//! * [`workload`] — YCSB-style workload generation.
//! * [`sim`] — deterministic discrete-event simulator and cost model
//!   used to regenerate the paper's figures.
//!
//! On top of the re-exports, this crate owns the [`deployment`]
//! builder — the one-call assembly of world + sharded servers +
//! front-end + admission + admin bootstrap — and the [`prelude`].
//!
//! ## Quickstart
//!
//! ```
//! use lcm::prelude::*;
//! use lcm::kvs::store::KvStore;
//!
//! let mut dep = DeploymentBuilder::<KvStore>::new()
//!     .shards(2)
//!     .clients(vec![ClientId(1)])
//!     .build()
//!     .unwrap();
//! let mut alice = dep.kvs_client(ClientId(1));
//! alice.put(dep.frontend_mut(), b"motd", b"hello").unwrap();
//! ```
//!
//! See `examples/quickstart.rs` for a complete bootstrapped
//! client/server session, and `examples/rollback_attack.rs` /
//! `examples/forking_attack.rs` for attack detection in action.

pub use lcm_core as core;
pub use lcm_crypto as crypto;
pub use lcm_kvs as kvs;
pub use lcm_net as net;
pub use lcm_runtime as runtime;
pub use lcm_sim as sim;
pub use lcm_storage as storage;
pub use lcm_tee as tee;
pub use lcm_workload as workload;

pub mod deployment;

/// The common surface in one import: the deployment builder, both
/// client libraries, the front-end port, and the admission/tenancy
/// types.
pub mod prelude {
    pub use crate::deployment::{Deployment, DeploymentBuilder, Mode};
    pub use lcm_core::admission::{
        AdmissionConfig, HealthSnapshot, RetryAfter, TenantConfig, TenantId,
    };
    pub use lcm_core::client::LcmClient;
    pub use lcm_core::server::BatchServer;
    pub use lcm_core::stability::Quorum;
    pub use lcm_core::transport::FrontendPort;
    pub use lcm_core::types::ClientId;
    pub use lcm_kvs::client::KvsClient;
}
