//! The unified deployment builder: one fluent entry point that
//! assembles the whole LCM stack — TEE world, sharded servers,
//! concurrent transport front-end, admission control, and the trusted
//! admin's bootstrap — and hands back a ready-to-use [`Deployment`].
//!
//! ```
//! use lcm::prelude::*;
//! use lcm::kvs::store::KvStore;
//!
//! let mut dep = DeploymentBuilder::<KvStore>::new()
//!     .shards(4)
//!     .mode(Mode::Pipelined)
//!     .clients(vec![ClientId(1), ClientId(2)])
//!     .build()
//!     .unwrap();
//! let mut alice = dep.kvs_client(ClientId(1));
//! alice.put(dep.frontend_mut(), b"motd", b"hello").unwrap();
//! ```
//!
//! The builder replaces the hand-rolled boilerplate (`TeeWorld` →
//! `build_sharded` → `Frontend::new` → `boot` → `AdminHandle` →
//! `bootstrap`) that every example and test used to repeat; the
//! underlying constructors remain public and unchanged for callers
//! that need to wire the layers differently.

use std::marker::PhantomData;
use std::sync::Arc;

use lcm_core::admin::{AdminHandle, DeploymentManifest};
use lcm_core::admission::{AdmissionConfig, HealthSnapshot};
use lcm_core::client::LcmClient;
use lcm_core::functionality::Functionality;
use lcm_core::server::{BatchServer, Replies};
use lcm_core::shard::{build_sharded, ShardedServer};
use lcm_core::stability::Quorum;
use lcm_core::transport::{DriveMode, Frontend, FrontendPort, TransportStats};
use lcm_core::types::ClientId;
use lcm_core::Result;
use lcm_kvs::client::KvsClient;
use lcm_storage::{MemoryStorage, StableStorage};
use lcm_tee::world::TeeWorld;

/// Execution mode of the deployment's server lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Synchronous seal-and-store: each batch's sealed state reaches
    /// stable storage before the replies leave the enclave.
    #[default]
    Sync,
    /// Asynchronous-write pipeline: sealed state persists on a
    /// background writer while the enclave executes the next batch
    /// (the mode behind the paper's Figs. 4/5).
    Pipelined,
}

/// Fluent builder over the whole stack. `F` is the functionality the
/// enclaves run (e.g. [`lcm_kvs::store::KvStore`],
/// [`lcm_core::functionality::Counter`]).
///
/// Every knob has a working default: one shard, [`Mode::Sync`], an
/// on-demand front-end (deterministic `process_all` pumping), client
/// group `{1}`, majority quorum, fresh in-memory storage, no
/// admission policy.
pub struct DeploymentBuilder<F: Functionality + 'static> {
    shards: u32,
    replicas: u32,
    mode: Mode,
    /// `Some(n)` = continuous front-end with `n` driver threads;
    /// `None` = on-demand with one driver per shard.
    driver_threads: Option<usize>,
    admission: Option<AdmissionConfig>,
    batch_limit: usize,
    clients: Vec<ClientId>,
    quorum: Quorum,
    seed: u64,
    storage: Option<Arc<dyn StableStorage>>,
    _functionality: PhantomData<fn() -> F>,
}

impl<F: Functionality + 'static> Default for DeploymentBuilder<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Functionality + 'static> std::fmt::Debug for DeploymentBuilder<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeploymentBuilder")
            .field("shards", &self.shards)
            .field("mode", &self.mode)
            .field("driver_threads", &self.driver_threads)
            .field("clients", &self.clients)
            .field("seed", &self.seed)
            .finish()
    }
}

impl<F: Functionality + 'static> DeploymentBuilder<F> {
    /// Starts a builder with the defaults described on the type.
    pub fn new() -> Self {
        DeploymentBuilder {
            shards: 1,
            replicas: 1,
            mode: Mode::Sync,
            driver_threads: None,
            admission: None,
            batch_limit: 16,
            clients: vec![ClientId(1)],
            quorum: Quorum::Majority,
            seed: 2024,
            storage: None,
            _functionality: PhantomData,
        }
    }

    /// Number of server shards (≥ 1; default 1).
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Replicas per shard group (≥ 1; default 1). With `n > 1` each
    /// shard runs as a [`lcm_core::replica::ReplicaGroup`] of `n`
    /// members: writes release only once a quorum of members holds the
    /// sealed state, a crashed leader fails over to the most advanced
    /// follower, and followers serve verified reads. Use an odd `n`
    /// (`2f + 1`) to tolerate `f` crashes.
    pub fn replicas(mut self, n: u32) -> Self {
        self.replicas = n.max(1);
        self
    }

    /// Execution mode of the lanes (default [`Mode::Sync`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the front-end continuously with `driver_threads` driver
    /// threads (the deployment posture: replies stream to ports while
    /// producers submit). Without this, the front-end is on-demand —
    /// submissions queue until [`Deployment::process_all`] pumps,
    /// which keeps batch arithmetic deterministic for tests.
    pub fn frontend(mut self, driver_threads: usize) -> Self {
        self.driver_threads = Some(driver_threads.max(1));
        self
    }

    /// Installs a multi-tenant admission policy at the front door:
    /// per-tenant token buckets, weighted fair queueing, retry dedup,
    /// and per-tenant × shard latency histograms (see
    /// [`lcm_core::admission`]).
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Per-shard batch limit (default 16).
    pub fn batch_limit(mut self, n: usize) -> Self {
        self.batch_limit = n.max(1);
        self
    }

    /// The initial client group the admin provisions (default `{1}`).
    pub fn clients(mut self, ids: Vec<ClientId>) -> Self {
        self.clients = ids;
        self
    }

    /// Stability quorum (default [`Quorum::Majority`]).
    pub fn quorum(mut self, quorum: Quorum) -> Self {
        self.quorum = quorum;
        self
    }

    /// Determinism seed for the TEE world and the admin's RNG
    /// (default 2024). Two builds with the same seed and storage
    /// derive the same key material.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stable storage medium (default: fresh in-memory storage).
    pub fn storage(mut self, storage: Arc<dyn StableStorage>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Assembles and bootstraps the deployment: builds the sharded
    /// servers over the TEE world, installs the admission policy,
    /// lifts them into the concurrent front-end, boots every lane,
    /// and (for a fresh deployment) runs the admin's attest-and-
    /// provision bootstrap.
    ///
    /// # Errors
    ///
    /// Boot and bootstrap failures surface unchanged (attestation
    /// rejection, storage errors, provisioning rejections).
    pub fn build(self) -> Result<Deployment> {
        let world = TeeWorld::new_deterministic(self.seed);
        let storage = self
            .storage
            .unwrap_or_else(|| Arc::new(MemoryStorage::new()));
        let server = if self.replicas > 1 {
            lcm_core::shard::build_replicated::<F>(
                &world,
                1,
                storage,
                self.batch_limit,
                lcm_core::shard::ReplicationSpec {
                    shards: self.shards,
                    replicas: self.replicas,
                    quorum: self.quorum,
                },
                matches!(self.mode, Mode::Pipelined),
            )
        } else {
            build_sharded::<F>(
                &world,
                1,
                storage,
                self.batch_limit,
                self.shards,
                matches!(self.mode, Mode::Pipelined),
            )
        };
        if let Some(config) = self.admission {
            server.configure_admission(config);
        }
        let (threads, drive_mode) = match self.driver_threads {
            Some(n) => (n, DriveMode::Continuous),
            None => (self.shards.max(1) as usize, DriveMode::OnDemand),
        };
        let mut frontend = Frontend::new(server, threads, drive_mode)?;
        let fresh = frontend.boot()?;
        let mut admin =
            AdminHandle::new_deterministic(&world, self.clients, self.quorum, self.seed);
        let manifest = if fresh {
            Some(admin.bootstrap(&mut frontend)?)
        } else {
            // Rebooted from existing sealed state: the enclaves
            // already hold their keys (same seed ⇒ the deterministic
            // admin re-derives matching client keys).
            None
        };
        Ok(Deployment {
            shards: self.shards,
            replicas: self.replicas,
            frontend,
            admin,
            manifest,
            world,
        })
    }
}

/// A fully bootstrapped LCM deployment: the sharded servers behind
/// their concurrent front-end, plus the trusted admin — everything
/// [`DeploymentBuilder::build`] assembled, ready for clients.
pub struct Deployment {
    shards: u32,
    replicas: u32,
    frontend: Frontend<ShardedServer<Box<dyn BatchServer>>>,
    admin: AdminHandle,
    manifest: Option<DeploymentManifest>,
    world: TeeWorld,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("shards", &self.shards)
            .field("clients", &self.admin.clients().len())
            .field("bootstrapped", &self.manifest.is_some())
            .finish()
    }
}

impl Deployment {
    /// Number of server shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Replicas per shard group (1 unless built with
    /// [`DeploymentBuilder::replicas`]).
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The deployment's concurrent verified-read surface: a
    /// thread-safe port serving read legs against the addressed
    /// replica without touching the write lanes (`None` only for
    /// planes without one; sharded deployments always provide it).
    pub fn read_port(&self) -> Option<Arc<dyn lcm_core::server::ReadPort>> {
        self.frontend.read_port()
    }

    /// A protocol client for `id`, wired for this deployment's shard
    /// count and holding the group key from the admin's bootstrap.
    pub fn client(&self, id: ClientId) -> LcmClient {
        LcmClient::new_sharded(id, self.admin.client_key(), self.shards)
    }

    /// A key-value client for `id` (meaningful when the deployment
    /// runs [`lcm_kvs::store::KvStore`]).
    pub fn kvs_client(&self, id: ClientId) -> KvsClient {
        KvsClient::new_sharded(id, self.admin.client_key(), self.shards)
    }

    /// Connects `id` to the front-end's reply demux, returning its
    /// thread-safe submit/receive port.
    pub fn port(&self, id: ClientId) -> FrontendPort {
        self.frontend.connect(id)
    }

    /// The concurrent front-end (shared surface: connect, stats,
    /// admission).
    pub fn frontend(&self) -> &Frontend<ShardedServer<Box<dyn BatchServer>>> {
        &self.frontend
    }

    /// The front-end's exclusive surface (pumping, crash hooks, the
    /// wrapped server). The [`BatchServer`] methods clients take
    /// (`&mut server`) are all here.
    pub fn frontend_mut(&mut self) -> &mut Frontend<ShardedServer<Box<dyn BatchServer>>> {
        &mut self.frontend
    }

    /// The trusted admin's shared surface (client group, keys).
    pub fn admin(&self) -> &AdminHandle {
        &self.admin
    }

    /// The trusted admin (membership changes, migration, manifests).
    pub fn admin_mut(&mut self) -> &mut AdminHandle {
        &mut self.admin
    }

    /// The deployment manifest from the bootstrap's whole-deployment
    /// attestation (`None` when `build` attached to already-
    /// provisioned storage).
    pub fn manifest(&self) -> Option<&DeploymentManifest> {
        self.manifest.as_ref()
    }

    /// The simulated TEE world hosting the enclaves.
    pub fn world(&self) -> &TeeWorld {
        &self.world
    }

    /// The front-end's shared flow/drop counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        self.frontend.stats()
    }

    /// Per-tenant × shard admission/latency health (`None` only if the
    /// plane exposes no admission controller; sharded deployments
    /// always do).
    pub fn health_snapshot(&self) -> Option<HealthSnapshot> {
        self.frontend.health_snapshot()
    }

    /// Pumps every queued wire to completion and returns the buffered
    /// replies of clients without a connected port (see
    /// [`BatchServer::process_all`]).
    ///
    /// # Errors
    ///
    /// Surfaces the first lane failure recorded since the last pump.
    pub fn process_all(&mut self) -> Result<Replies> {
        self.frontend.process_all()
    }
}
